"""Counter / gauge / histogram registry.

Instrumented code reports *what happened* (lookup counts, batch sizes,
unmapped residuals) through a :class:`MetricsRegistry` so cross-run
comparability does not depend on parsing rendered tables.  Like the
tracer (:mod:`repro.obs.trace`), the active registry is a context
variable: hot paths call :func:`current_metrics` and skip all work when
observability is off, so an uninstrumented run pays one context lookup
per call site.

All instruments are thread-safe — the executor's worker pool increments
them concurrently — and snapshot to plain JSON types for
:class:`~repro.obs.report.RunReport`.
"""

from __future__ import annotations

import bisect
import contextvars
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

_ACTIVE_METRICS: contextvars.ContextVar["MetricsRegistry | None"] = (
    contextvars.ContextVar("repro_obs_active_metrics", default=None)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be >= 0)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the latest value."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The latest recorded value."""
        with self._lock:
            return self._value


#: Default histogram bucket upper bounds.  A wide geometric ladder
#: (~x2.5 per step) because one registry holds heterogeneous units —
#: sub-millisecond latencies next to thousand-element batch sizes.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Histogram:
    """A streaming summary plus cumulative bucket counts.

    Besides count / sum / min / max, each observation lands in the
    first bucket whose upper bound contains it, giving the Prometheus
    exposition (:mod:`repro.obs.export`) real ``le`` buckets instead of
    a four-number summary.
    """

    __slots__ = (
        "name", "_count", "_sum", "_min", "_max", "_lock",
        "_bounds", "_bucket_counts",
    )

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._bounds = tuple(sorted(float(b) for b in buckets))
        if not self._bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        # One slot per finite bound plus the implicit +Inf overflow slot.
        self._bucket_counts = [0] * (len(self._bounds) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one observation into the summary and its bucket."""
        value = float(value)
        slot = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            self._bucket_counts[slot] += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def bounds(self) -> tuple[float, ...]:
        """Finite bucket upper bounds, ascending (``+Inf`` is implicit)."""
        return self._bounds

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``inf`` last.

        Cumulative as Prometheus expects: each bucket counts every
        observation ``<=`` its bound, and the ``inf`` bucket equals the
        total count.
        """
        with self._lock:
            per_slot = list(self._bucket_counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self._bounds, per_slot):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + per_slot[-1]))
        return out

    def summary(self) -> dict[str, float]:
        """JSON-ready summary; empty histograms report zeroed bounds."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
            }


class MetricsRegistry:
    """Named instruments for one run; instruments are created on demand."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        """Get or create the histogram ``name``.

        ``buckets`` only applies on creation; an existing histogram
        keeps its original bounds.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets if buckets is not None else DEFAULT_BUCKETS
                )
            return instrument

    def instruments(
        self,
    ) -> tuple[dict[str, Counter], dict[str, Gauge], dict[str, Histogram]]:
        """Shallow copies of the instrument tables (for exporters)."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                dict(self._histograms),
            )

    def counter_value(self, name: str) -> int:
        """A counter's current count (0 when never touched)."""
        with self._lock:
            instrument = self._counters.get(name)
        return 0 if instrument is None else instrument.value

    def snapshot(self) -> dict[str, Any]:
        """All instruments as plain JSON types, sorted by name."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].summary() for name in sorted(histograms)
            },
        }


def current_metrics() -> MetricsRegistry | None:
    """The registry active in this context, if any."""
    return _ACTIVE_METRICS.get()


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make a registry active for the enclosed block (and spawned contexts)."""
    token = _ACTIVE_METRICS.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE_METRICS.reset(token)


def incr(name: str, n: int = 1) -> None:
    """Increment a counter on the active registry; no-op when none is."""
    registry = _ACTIVE_METRICS.get()
    if registry is not None:
        registry.counter(name).add(n)


def observe(name: str, value: float) -> None:
    """Observe into a histogram on the active registry; no-op when none is."""
    registry = _ACTIVE_METRICS.get()
    if registry is not None:
        registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry; no-op when none is."""
    registry = _ACTIVE_METRICS.get()
    if registry is not None:
        registry.gauge(name).set(value)
