"""Bench-trend tracking: reading benchmark records across revisions.

``benchmarks/record.py`` writes every benchmark's results in one
envelope — ``BENCH_<name>.json`` for the latest run plus an append-only
``BENCH_history.jsonl`` with one line per (bench, git revision) — so
PRs accumulate a per-revision performance record.  This module is the
*reading* side, shipped inside the package (the ``benchmarks/``
directory is not importable at runtime): it loads those files, orders
each benchmark's headline metrics by time, and flags direction-aware
regressions between the two most recent revisions.

``repro bench history`` renders the trend table and, with ``--check``,
exits nonzero on a flagged regression — the hook the CI telemetry
gate uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ReproError

#: Envelope schema identifier written by ``benchmarks/record.py``.
BENCH_SCHEMA = "repro-bench"

#: Latest-run snapshot files.
BENCH_GLOB = "BENCH_*.json"

#: The append-only per-revision history file.
HISTORY_FILE = "BENCH_history.jsonl"

#: Default fractional worsening of a headline metric that counts as a
#: regression (10%).
DEFAULT_THRESHOLD = 0.10


class BenchHistoryError(ReproError):
    """Bench record files are missing or malformed."""


@dataclass(frozen=True)
class BenchEntry:
    """One benchmark run's headline record.

    Attributes:
        bench: benchmark name (``serve``, ``sweep``, ...).
        git_rev: the revision the run measured ("" when unknown).
        created_unix: run wall-clock timestamp.
        headline: metric name -> ``{"value": float, "better": str}``
            where ``better`` is ``"lower"`` or ``"higher"``.
        machine: host fingerprint (python, platform, cpus).
    """

    bench: str
    git_rev: str
    created_unix: float
    headline: dict[str, dict[str, Any]] = field(default_factory=dict)
    machine: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "BenchEntry | None":
        """Parse one envelope/history line; non-bench payloads yield None."""
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != BENCH_SCHEMA:
            return None
        bench = payload.get("bench")
        if not isinstance(bench, str) or not bench:
            return None
        headline = {}
        for name, record in dict(payload.get("headline", {})).items():
            if not isinstance(record, dict) or "value" not in record:
                continue
            try:
                value = float(record["value"])
            except (TypeError, ValueError):
                continue
            headline[str(name)] = {
                "value": value,
                "better": str(record.get("better", "lower")),
            }
        return cls(
            bench=bench,
            git_rev=str(payload.get("git_rev", "")),
            created_unix=float(payload.get("created_unix", 0.0)),
            headline=headline,
            machine=dict(payload.get("machine", {})),
        )


def load_entries(path: str | Path) -> list[BenchEntry]:
    """Load bench entries from a directory (or one file), oldest first.

    A directory contributes its ``BENCH_history.jsonl`` plus any
    ``BENCH_*.json`` snapshots; duplicates — the same (bench, git_rev,
    created_unix) seen in both — collapse to one entry.

    Raises:
        BenchHistoryError: when the path does not exist or no record
            parses.
    """
    root = Path(path)
    if not root.exists():
        raise BenchHistoryError(f"no such bench record path: {root}")
    payloads: list[dict[str, Any]] = []
    if root.is_file():
        payloads.extend(_read_file(root))
    else:
        history = root / HISTORY_FILE
        if history.exists():
            payloads.extend(_read_file(history))
        for snapshot in sorted(root.glob(BENCH_GLOB)):
            payloads.extend(_read_file(snapshot))
    seen: dict[tuple[str, str, float], BenchEntry] = {}
    for payload in payloads:
        entry = BenchEntry.from_payload(payload)
        if entry is None:
            continue
        seen[(entry.bench, entry.git_rev, entry.created_unix)] = entry
    if not seen:
        raise BenchHistoryError(
            f"no bench records under {root} (expected {BENCH_GLOB} or "
            f"{HISTORY_FILE} written by benchmarks/record.py)"
        )
    return sorted(seen.values(), key=lambda e: (e.bench, e.created_unix))


def _read_file(path: Path) -> list[dict[str, Any]]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise BenchHistoryError(f"cannot read {path}: {exc}")
    if path.suffix == ".jsonl":
        out = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except ValueError:
                continue  # a torn write must not sink the whole history
        return out
    try:
        return [json.loads(text)]
    except ValueError as exc:
        raise BenchHistoryError(f"malformed bench record {path}: {exc}")


@dataclass(frozen=True)
class TrendRow:
    """One (bench, metric) trend across revisions.

    Attributes:
        bench: benchmark name.
        metric: headline metric name.
        better: ``"lower"`` or ``"higher"``.
        values: ``(git_rev, value)`` pairs, oldest first.
        latest: most recent value.
        previous: value before it (None on a single data point).
        change: fractional change latest vs previous, signed so that
            positive means *worse* (direction-aware); None without a
            previous value.
        regressed: True when ``change`` exceeds the threshold.
    """

    bench: str
    metric: str
    better: str
    values: tuple[tuple[str, float], ...]
    latest: float
    previous: float | None
    change: float | None
    regressed: bool


def trend_rows(
    entries: Iterable[BenchEntry],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[TrendRow]:
    """Fold entries into per-(bench, metric) trend rows."""
    series: dict[tuple[str, str], list[tuple[float, str, float, str]]] = {}
    for entry in entries:
        for metric, record in entry.headline.items():
            series.setdefault((entry.bench, metric), []).append(
                (
                    entry.created_unix,
                    entry.git_rev,
                    float(record["value"]),
                    record.get("better", "lower"),
                )
            )
    rows: list[TrendRow] = []
    for (bench, metric), points in sorted(series.items()):
        points.sort(key=lambda p: p[0])
        better = points[-1][3]
        values = tuple((rev, value) for _, rev, value, _ in points)
        latest = values[-1][1]
        previous = values[-2][1] if len(values) > 1 else None
        change: float | None = None
        regressed = False
        if previous is not None and previous != 0:
            raw = (latest - previous) / abs(previous)
            change = raw if better == "lower" else -raw
            regressed = change > threshold
        rows.append(
            TrendRow(
                bench=bench,
                metric=metric,
                better=better,
                values=values,
                latest=latest,
                previous=previous,
                change=change,
                regressed=regressed,
            )
        )
    return rows


def render_history(rows: list[TrendRow]) -> str:
    """The ``repro bench history`` trend table."""
    if not rows:
        return "BENCH HISTORY\n(no records)"
    bench_w = max(len("bench"), max(len(r.bench) for r in rows))
    metric_w = max(len("metric"), max(len(r.metric) for r in rows))
    lines = [
        "BENCH HISTORY",
        f"{'bench':<{bench_w}}  {'metric':<{metric_w}}  {'runs':>4}  "
        f"{'previous':>12}  {'latest':>12}  {'change':>8}  flag",
    ]
    for row in rows:
        previous = "-" if row.previous is None else f"{row.previous:.4g}"
        change = "-" if row.change is None else f"{row.change:+.1%}"
        flag = "REGRESSED" if row.regressed else ""
        lines.append(
            f"{row.bench:<{bench_w}}  {row.metric:<{metric_w}}  "
            f"{len(row.values):>4}  {previous:>12}  {row.latest:>12.4g}  "
            f"{change:>8}  {flag}"
        )
    return "\n".join(lines)
