"""Lock-light telemetry event bus: a bounded ring buffer plus sinks.

The post-hoc observability of :mod:`repro.obs` (spans, metrics,
reports) only becomes visible after a run finishes.  The
:class:`TelemetryBus` is the *live* channel: instrumented code publishes
small dict events — span completions, stage events, access-log records,
worker heartbeats — into a bounded ring buffer that readers can tail
while the process runs.

Design constraints, in order:

- **publish must be near-free.**  The hot path is one
  ``deque.append`` (atomic under the GIL, no lock taken) plus one
  monotonically increasing sequence bump; an idle bus costs its callers
  a single context lookup via :func:`publish`.
- **bounded memory.**  The ring keeps the newest ``capacity`` events;
  a slow reader loses the oldest events, never blocks the writer.
  ``dropped`` counts what fell off the ring so readers can tell.
- **pluggable sinks.**  A sink is any callable taking one event dict;
  :class:`JsonlSink` appends one JSON object per line to a file,
  :class:`TailSink` keeps an in-memory tail for tests and the live
  status views.  Sink errors are swallowed after disabling the sink —
  telemetry must never take the workload down.

Like the tracer and the metrics registry, the *active* bus is a context
variable (:func:`use_bus` / :func:`current_bus`), so library code
publishes through the module-level :func:`publish` helper without
plumbing.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

_ACTIVE_BUS: contextvars.ContextVar["TelemetryBus | None"] = (
    contextvars.ContextVar("repro_obs_active_bus", default=None)
)

#: Default ring capacity (events).
DEFAULT_CAPACITY = 4096


class TelemetryBus:
    """A bounded in-process event ring with optional sinks.

    Events are plain dicts; :meth:`publish` stamps each with a
    monotonically increasing ``seq`` and a wall-clock ``ts`` so readers
    can order and resume.  The ring itself is a ``deque(maxlen=...)`` —
    appends are atomic under the GIL, so publishers never contend on a
    lock; only sequence assignment takes a very short one.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"bus capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._sinks: list[Callable[[dict[str, Any]], None]] = []
        self._dead_sinks = 0

    # -- publishing ----------------------------------------------------------

    def publish(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Publish one event; returns the stamped event dict."""
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        event = {"seq": seq, "ts": time.time(), "kind": kind, **fields}
        self._ring.append(event)
        # Snapshot: disabling a broken sink mid-iteration must not skip
        # the sinks behind it.
        for sink in tuple(self._sinks):
            try:
                sink(event)
            except Exception:
                # A broken sink must not break the workload; drop it.
                self.remove_sink(sink)
                self._dead_sinks += 1
        return event

    # -- reading -------------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the newest published event (0 when none)."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events that fell off the ring before any reader saw the tail."""
        return max(0, self._seq - len(self._ring))

    def tail(self, n: int | None = None) -> list[dict[str, Any]]:
        """The newest ``n`` events (all retained events when ``None``)."""
        snapshot = list(self._ring)
        return snapshot if n is None else snapshot[-n:]

    def events_since(self, seq: int) -> list[dict[str, Any]]:
        """Retained events with a sequence number greater than ``seq``."""
        return [e for e in self._ring if e["seq"] > seq]

    def __len__(self) -> int:
        return len(self._ring)

    # -- sinks ---------------------------------------------------------------

    def add_sink(self, sink: Callable[[dict[str, Any]], None]) -> None:
        """Attach a sink called synchronously with every published event."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[dict[str, Any]], None]) -> None:
        """Detach a sink; absent sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def stats(self) -> dict[str, int]:
        """Operational counters (published / retained / dropped / sinks)."""
        return {
            "published": self._seq,
            "retained": len(self._ring),
            "dropped": self.dropped,
            "sinks": len(self._sinks),
            "dead_sinks": self._dead_sinks,
        }


class JsonlSink:
    """Appends one JSON object per event line to a file.

    The file handle is opened lazily and writes are line-buffered, so a
    tailing ``tail -f`` consumer sees events promptly.  Non-JSON field
    values fall back to ``repr``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self._lock = threading.Lock()

    def __call__(self, event: dict[str, Any]) -> None:
        try:
            line = json.dumps(event, sort_keys=False, default=repr)
        except (TypeError, ValueError):
            line = json.dumps({"seq": event.get("seq"), "kind": "unserializable"})
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", buffering=1, encoding="utf-8")
            self._handle.write(line + "\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class TailSink:
    """Keeps the newest ``capacity`` events in memory (tests, live views)."""

    def __init__(self, capacity: int = 256) -> None:
        self._tail: deque[dict[str, Any]] = deque(maxlen=capacity)

    def __call__(self, event: dict[str, Any]) -> None:
        self._tail.append(event)

    @property
    def events(self) -> list[dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._tail)


def current_bus() -> TelemetryBus | None:
    """The bus active in this context, if any."""
    return _ACTIVE_BUS.get()


@contextmanager
def use_bus(bus: TelemetryBus) -> Iterator[TelemetryBus]:
    """Make a bus active for the enclosed block (and spawned contexts)."""
    token = _ACTIVE_BUS.set(bus)
    try:
        yield bus
    finally:
        _ACTIVE_BUS.reset(token)


def publish(kind: str, **fields: Any) -> None:
    """Publish onto the active bus; a cheap no-op when none is."""
    bus = _ACTIVE_BUS.get()
    if bus is not None:
        bus.publish(kind, **fields)
