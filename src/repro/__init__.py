"""repro: reproduction of "On the Geographic Location of Internet Resources".

Lakhina, Byers, Crovella, Matta (IMC 2002).  The package synthesises a
geographically realistic Internet, measures it the way Skitter and
Mercator did, geolocates and AS-maps the observations the way IxMapper /
EdgeScape and RouteViews-based longest-prefix matching did, and then
runs the paper's analyses — recovering the planted geographic laws.

Quickstart::

    from repro import small_scenario, run_pipeline
    result = run_pipeline(small_scenario())
    dataset = result.dataset("IxMapper", "Skitter")
    print(dataset.n_nodes, dataset.n_links, dataset.n_locations)
"""

from repro.config import (
    BgpConfig,
    GeolocConfig,
    GroundTruthConfig,
    MercatorConfig,
    ScenarioConfig,
    SkitterConfig,
    default_scenario,
    small_scenario,
)
from repro.datasets import MappedDataset, PipelineResult, run_pipeline
from repro.errors import ReproError
from repro.runtime import ArtifactCache, Telemetry

__version__ = "1.0.0"

__all__ = [
    "BgpConfig",
    "GeolocConfig",
    "GroundTruthConfig",
    "MercatorConfig",
    "ScenarioConfig",
    "SkitterConfig",
    "default_scenario",
    "small_scenario",
    "MappedDataset",
    "PipelineResult",
    "run_pipeline",
    "ReproError",
    "ArtifactCache",
    "Telemetry",
    "__version__",
]
