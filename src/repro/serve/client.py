"""Small stdlib client for the snapshot query service.

Used by ``repro query`` (one-shot CLI calls), the CI smoke script, and
the serve benchmark's correctness checks.  It speaks plain
``urllib.request``, parses the JSON error envelope, and honours the
server's backpressure contract: a ``503`` is retried after the
advertised ``Retry-After`` delay, up to a retry budget, before
surfacing as :class:`OverloadError`.

Connection-level failures (refused, reset, DNS) are retried with
jittered exponential backoff (:class:`~repro.serve.retry.BackoffPolicy`)
before surfacing as :class:`ConnectError` — a server still binding its
socket, or a coordinator mid-restart, should not fail a one-shot CLI
call.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any

from repro.errors import OverloadError, ServeError
from repro.serve.retry import BackoffPolicy, call_with_retries


class ConnectError(ServeError):
    """The service could not be reached (after connection retries)."""


class QueryError(ServeError):
    """A non-retryable error response (4xx) from the query service.

    Attributes:
        status: the HTTP status code.
        payload: the decoded JSON error envelope.
    """

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class SnapshotClient:
    """One-connection-per-call JSON client for a :class:`SnapshotServer`."""

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        max_retries: int = 3,
        connect_backoff: BackoffPolicy | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.connect_backoff = (
            connect_backoff if connect_backoff is not None else BackoffPolicy()
        )

    def get(self, endpoint: str, **params: Any) -> dict:
        """GET one endpoint with query parameters; returns decoded JSON.

        Raises:
            QueryError: on a 4xx response.
            OverloadError: when the server keeps shedding past the
                retry budget.
            ConnectError: when the service stays unreachable past the
                connection backoff budget.
            ServeError: on undecodable payloads.
        """
        target = "/" + endpoint.lstrip("/")
        if params:
            target += "?" + urllib.parse.urlencode(params)
        url = self.base_url + target
        shed = 0
        while True:
            try:
                return call_with_retries(
                    lambda: self._fetch(url),
                    self.connect_backoff,
                    retry_on=(ConnectError,),
                )
            except urllib.error.HTTPError as exc:
                body = exc.read().decode("utf-8", errors="replace")
                try:
                    payload = json.loads(body)
                except json.JSONDecodeError:
                    payload = {"error": body}
                if exc.code == 503:
                    shed += 1
                    if shed > self.max_retries:
                        raise OverloadError(
                            f"server still shedding after {shed} attempts: "
                            f"{payload.get('error')}"
                        ) from exc
                    retry_after = exc.headers.get("Retry-After")
                    time.sleep(min(float(retry_after or 1.0), 5.0))
                    continue
                raise QueryError(exc.code, payload) from exc
            except json.JSONDecodeError as exc:
                raise ServeError(f"undecodable response from {url}") from exc

    def _fetch(self, url: str) -> dict:
        """One HTTP round trip; connection failures become ConnectError.

        ``HTTPError`` (a response *was* received) propagates unchanged so
        the 503/4xx handling in :meth:`get` sees it — it subclasses
        ``URLError``, so the order of these except clauses matters.
        """
        try:
            with urllib.request.urlopen(url, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError:
            raise
        except (urllib.error.URLError, OSError) as exc:
            raise ConnectError(f"cannot reach {url}: {exc}") from exc

    # -- convenience wrappers ------------------------------------------------

    def healthz(self) -> dict:
        """Liveness probe."""
        return self.get("healthz")

    def stats(self) -> dict:
        """Operational counters."""
        return self.get("stats")

    def locate(self, address: int) -> dict:
        """Locate one address."""
        return self.get("locate", address=address)

    def locate_many(self, addresses: list[int]) -> list[dict | None]:
        """Locate a batch of addresses in one request."""
        payload = self.get("locate", addresses=",".join(map(str, addresses)))
        return payload["results"]

    def as_info(self, asn: int) -> dict:
        """Per-AS summary."""
        return self.get(f"as/{asn}")

    def near(self, lat: float, lon: float, k: int = 1) -> dict:
        """k-nearest-node query."""
        return self.get("near", lat=lat, lon=lon, k=k)

    def within_radius(self, lat: float, lon: float, radius: float) -> dict:
        """Radius (disc) query."""
        return self.get("near", lat=lat, lon=lon, radius=radius)

    def distance_preference(self, region: str, d: float | None = None) -> dict:
        """Section V ``f_hat`` table (or one value at distance ``d``)."""
        if d is None:
            return self.get("distance-preference", region=region)
        return self.get("distance-preference", region=region, d=d)
