"""Concurrent snapshot query server (stdlib sockets only).

:class:`SnapshotServer` exposes one :class:`~repro.serve.index.SnapshotIndex`
over a small JSON/HTTP protocol:

==============================  ==============================================
endpoint                        answers
==============================  ==============================================
``/locate?address=N``           coordinates, origin AS, degree of one address
``/locate?addresses=a,b,c``     the batch form (one vectorised lookup)
``/as/<asn>``                   per-AS summary: nodes, locations, hull, degree
``/near?lat=&lon=&k=``          k nearest nodes (``radius=`` for a disc query)
``/distance-preference?region=``  Section V ``f_hat(d)`` (``d=`` for one value)
``/healthz``                    liveness + version (never shed)
``/stats``                      cache/batcher/index/metrics counters (never shed)
``/metrics``                    Prometheus text exposition (never shed)
==============================  ==============================================

Three load-management layers keep the service responsive instead of
collapsing under pressure:

- **response cache** — an LRU keyed on ``(request target, snapshot
  hash)`` serves repeated queries without touching the index;
- **micro-batching** — concurrent ``/locate`` cache misses coalesce
  into one vectorised ``locate_many`` flush
  (:mod:`repro.serve.batcher`);
- **backpressure** — both the in-flight request count and the batcher
  queue are bounded; beyond either bound the server sheds with
  ``503`` + ``Retry-After`` while ``/healthz`` keeps answering.

HTTP handling is a deliberately minimal HTTP/1.1 subset over
``socketserver.ThreadingTCPServer`` (GET only, keep-alive, explicit
``Content-Length``) — ``BaseHTTPRequestHandler``'s header parsing costs
more than the queries themselves at the request rates the benchmark
drives.

Instrumentation goes through :mod:`repro.obs`: per-endpoint request
counters and latency histograms, shed counters, cache hit/miss
counters, and a queue-depth gauge land in a
:class:`~repro.obs.metrics.MetricsRegistry`; :meth:`SnapshotServer.stats_report`
bundles them into a schema-valid, RunReport-compatible snapshot.  The
same registry is scrape-able live at ``/metrics`` (Prometheus text
format, see :mod:`repro.obs.export`).  Each request additionally emits
one structured ``access`` event — endpoint, status, latency, trace ID —
onto the server's :class:`~repro.obs.bus.TelemetryBus` (or the
context-active bus), with per-request tracing gated by an optional
:class:`~repro.obs.trace.TraceSampler` so tracing cost follows the
sample rate, not the request rate.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any
from urllib.parse import unquote_plus

from repro import __version__
from repro.core.distance import DistancePreference, f_hat_at
from repro.errors import (
    AnalysisError,
    GeoError,
    OverloadError,
    ReportError,
    ServeError,
)
from repro.geo.regions import region_by_name
from repro.obs.bus import TelemetryBus, publish as _bus_publish
from repro.obs.export import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import RunReport, validate_report
from repro.obs.trace import (
    TraceContext,
    Tracer,
    TraceSampler,
    new_trace_id,
    use_trace_context,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import LruCache
from repro.serve.index import SnapshotIndex

#: Endpoints exempt from admission control: the service must stay
#: observable exactly when it is shedding everything else.
_ALWAYS_ADMIT = ("healthz", "stats", "metrics")

_JSON_TYPE = b"application/json"
_TEXT_METRICS_TYPE = _METRICS_CONTENT_TYPE.encode("latin-1")

#: Request header carrying the caller's trace id (coordinator -> shard).
TRACE_HEADER = "x-repro-trace"


class SnapshotServer:
    """A threaded HTTP query server over one immutable snapshot index."""

    #: Endpoints exempt from admission control (and from the response
    #: cache).  Subclasses extend this — the cluster shard adds its
    #: ``admin`` plane so staging works while query traffic sheds.
    always_admit: tuple[str, ...] = _ALWAYS_ADMIT

    def __init__(
        self,
        index: SnapshotIndex,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 8192,
        max_inflight: int = 64,
        max_pending: int = 4096,
        max_batch: int = 512,
        batch_window_s: float = 0.002,
        retry_after_s: int = 1,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        bus: TelemetryBus | None = None,
        trace_sampler: TraceSampler | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}")
        self.index = index
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.bus = bus
        self.trace_sampler = trace_sampler
        self.cache = LruCache(cache_size)
        self.batcher = MicroBatcher(
            index.locate_many,
            max_batch=max_batch,
            max_wait_s=batch_window_s,
            max_pending=max_pending,
        )
        self._max_inflight = max_inflight
        self._retry_after_s = retry_after_s
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._started_unix = time.time()
        self._httpd = _TcpServer((host, port), _Handler)
        self._httpd.app = self
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (the actual one when constructed with port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SnapshotServer":
        """Serve in a background thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down cleanly: stop accepting, then drain the batcher."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.batcher.close()

    def __enter__(self) -> "SnapshotServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- admission control ---------------------------------------------------

    def _admit(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self._max_inflight:
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        """Requests currently being processed (shed-able endpoints)."""
        with self._inflight_lock:
            return self._inflight

    @property
    def retry_after_s(self) -> int:
        """Seconds clients are told to back off when shed."""
        return self._retry_after_s

    # -- request dispatch ----------------------------------------------------

    def handle_target(
        self, target: str, trace_parent: str = ""
    ) -> tuple[int, bytes, bytes]:
        """Answer one GET target; returns ``(status, body, content_type)``.

        ``trace_parent`` is the caller's trace id (from the
        ``X-Repro-Trace`` header); a propagated trace is always kept —
        the sampling decision was the originator's to make.
        """
        path, _, raw_query = target.partition("?")
        endpoint = _endpoint_of(path)
        start = time.perf_counter()
        sampled = bool(trace_parent) or (
            self.trace_sampler.should_sample()
            if self.trace_sampler is not None
            else True
        )
        if trace_parent:
            trace_id = trace_parent
        else:
            trace_id = (
                new_trace_id() if (sampled and self.tracer is not None) else ""
            )
        shed_able = endpoint not in self.always_admit
        admitted = False
        status = 500
        try:
            if endpoint == "metrics":
                status = 200
                body = render_prometheus(self.metrics).encode("utf-8")
                return status, body, _TEXT_METRICS_TYPE
            if shed_able:
                admitted = self._admit()
                if not admitted:
                    status = 503
                    self.metrics.counter("serve.shed").add(1)
                    return (
                        status,
                        _encode(
                            {
                                "error": "over capacity",
                                "retry_after_s": self._retry_after_s,
                            }
                        ),
                        _JSON_TYPE,
                    )
            if shed_able:
                hit, cached = self.cache.get((target, self.index.snapshot_hash))
                if hit:
                    status = 200
                    self.metrics.counter("serve.cache.hits").add(1)
                    return status, cached, _JSON_TYPE
                self.metrics.counter("serve.cache.misses").add(1)
            try:
                if self.tracer is not None and sampled and shed_able:
                    context = TraceContext(trace_id=trace_id)
                    with use_trace_context(context), self.tracer.span(
                        f"serve.{endpoint}"
                    ):
                        status, payload = self._dispatch(endpoint, path, raw_query)
                else:
                    status, payload = self._dispatch(endpoint, path, raw_query)
            except OverloadError as exc:
                status = 503
                self.metrics.counter("serve.shed").add(1)
                return (
                    status,
                    _encode(
                        {"error": str(exc), "retry_after_s": self._retry_after_s}
                    ),
                    _JSON_TYPE,
                )
            except ServeError as exc:
                status, payload = 400, {"error": str(exc)}
            except (AnalysisError, GeoError) as exc:
                status, payload = 404, {"error": str(exc)}
            # Internal endpoints may hand back pre-encoded bytes (the
            # shard's line protocol); everything else is JSON.
            body = payload if isinstance(payload, bytes) else _encode(payload)
            if shed_able and status == 200:
                self.cache.put((target, self.index.snapshot_hash), body)
            return status, body, _JSON_TYPE
        finally:
            if admitted:
                self._release()
            wall_ms = (time.perf_counter() - start) * 1e3
            self.metrics.counter(f"serve.requests.{endpoint}").add(1)
            self.metrics.histogram(f"serve.latency_ms.{endpoint}").observe(
                wall_ms
            )
            self._publish_access(endpoint, target, status, wall_ms, trace_id)

    def _publish_access(
        self, endpoint: str, target: str, status: int, wall_ms: float, trace_id: str
    ) -> None:
        """One structured access-log event per request, onto the bus.

        Uses the server's own bus when configured, else whatever bus is
        active in the handling thread's context (a no-op without one).
        """
        fields = {
            "endpoint": endpoint,
            "target": target,
            "status": status,
            "ms": round(wall_ms, 3),
            "trace_id": trace_id,
            "sampled": bool(trace_id),
        }
        if self.bus is not None:
            self.bus.publish("access", **fields)
        else:
            _bus_publish("access", **fields)

    def _dispatch(
        self, endpoint: str, path: str, raw_query: str
    ) -> tuple[int, Any]:
        params = _parse_query(raw_query)
        return self._route(endpoint, path, params, self.index, self.batcher)

    def _route(
        self,
        endpoint: str,
        path: str,
        params: dict[str, str],
        index: SnapshotIndex,
        batcher: MicroBatcher,
    ) -> tuple[int, Any]:
        """Route one parsed request against an explicit index/batcher.

        Handlers take the index and batcher as arguments rather than
        reading ``self`` so a shard can resolve a *generation* (during
        hot snapshot swap, old and new indexes serve side by side) and
        still share every handler with the single-process server.
        """
        if endpoint == "healthz":
            return 200, {
                "status": "ok",
                "version": __version__,
                "snapshot_hash": index.snapshot_hash,
                "gen": index.gen,
                "built_unix": round(index.built_unix, 3),
                "uptime_s": round(time.time() - self._started_unix, 3),
            }
        if endpoint == "stats":
            return 200, self.stats()
        if endpoint == "locate":
            return self._handle_locate(params, index, batcher)
        if endpoint == "as":
            return self._handle_as(path, index)
        if endpoint == "near":
            return self._handle_near(params, index)
        if endpoint == "distance-preference":
            return self._handle_preference(params, index)
        return 404, {"error": f"unknown endpoint {path!r}"}

    def _handle_locate(
        self,
        params: dict[str, str],
        index: SnapshotIndex,
        batcher: MicroBatcher,
    ) -> tuple[int, Any]:
        if "addresses" in params:
            addresses = parse_address_list(params["addresses"])
            results = index.locate_many(addresses)
            return 200, {"results": results}
        if "address" not in params:
            raise ServeError("locate requires ?address=N (or ?addresses=a,b)")
        address = _int_param(params["address"], "address")
        # Cache miss path: coalesce with concurrent misses in one flush.
        future = batcher.submit(address)
        self.metrics.gauge("serve.queue_depth").set(batcher.queue_depth)
        record = future.result()
        if record is None:
            return 404, {"error": locate_miss_message(address)}
        return 200, record

    def _handle_as(self, path: str, index: SnapshotIndex) -> tuple[int, Any]:
        asn = parse_as_path(path)
        record = index.as_record(asn)
        if record is None:
            return 404, {"error": as_miss_message(asn)}
        return 200, record

    def _handle_near(
        self, params: dict[str, str], index: SnapshotIndex
    ) -> tuple[int, Any]:
        query, limit = parse_near_query(params)
        if "radius" in query:
            results = index.within_radius(
                query["lat"], query["lon"], query["radius"], limit=limit
            )
        else:
            results = index.nearest(query["lat"], query["lon"], k=query["k"])
        return 200, {"query": query, "results": results}

    def _handle_preference(
        self, params: dict[str, str], index: SnapshotIndex
    ) -> tuple[int, Any]:
        name = params.get("region")
        if not name:
            raise ServeError(
                "distance-preference requires ?region= (e.g. US, Europe, Japan)"
            )
        region = region_by_name(name)
        pref = index.distance_preference(region)
        return 200, preference_payload(pref, params)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready operational counters for ``/stats``."""
        return {
            "index": self.index.stats(),
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
            "inflight": self.inflight,
            "max_inflight": self._max_inflight,
            # Ejection inputs for a fronting coordinator: how hard this
            # replica is shedding and how deep its lookup queue runs.
            "shed_requests": int(self.metrics.counter("serve.shed").value),
            "queue_depth": self.batcher.queue_depth,
            "uptime_s": round(time.time() - self._started_unix, 3),
            "metrics": self.metrics.snapshot(),
        }

    def stats_report(self) -> RunReport:
        """The server's counters as a schema-valid :class:`RunReport`.

        The snapshot is listed as the single artifact (label -> content
        hash) and every serve counter/histogram lands in ``metrics``, so
        ``repro report show`` / ``report diff`` work on service stats
        exactly as on pipeline runs.

        Raises:
            ReportError: if the assembled report fails schema validation
                (a bug guard, not an expected path).
        """
        report = RunReport(
            seed=0,
            config={
                "service": "snapshot-query",
                "snapshot_label": self.index.dataset.label,
                "snapshot_hash": self.index.snapshot_hash,
                "host": self.host,
                "port": self.port,
                "max_inflight": self._max_inflight,
                "cache_capacity": self.cache.capacity,
            },
            metrics=self.metrics.snapshot(),
            spans=self.tracer.to_dicts() if self.tracer is not None else [],
            artifacts={self.index.dataset.label: self.index.snapshot_hash},
            created_unix=time.time(),
        )
        errors = validate_report(report.to_dict())
        if errors:
            raise ReportError(
                "serve stats report failed validation: " + "; ".join(errors[:3])
            )
        return report


# --- transport layer ---------------------------------------------------------


class _TcpServer(socketserver.ThreadingTCPServer):
    """Thread-per-connection TCP server with a bounded accept backlog."""

    daemon_threads = True
    allow_reuse_address = True
    request_queue_size = 128
    app: SnapshotServer  # attached right after construction


class _Handler(socketserver.StreamRequestHandler):
    """Minimal HTTP/1.1 GET handler (keep-alive, explicit lengths).

    Parsing is by hand because this loop *is* the hot path: the standard
    ``BaseHTTPRequestHandler`` spends more time in ``email``-based header
    parsing than the index spends answering the query.
    """

    timeout = 60
    wbufsize = -1  # fully buffered writes; one flush per response

    def handle(self) -> None:
        app = self.server.app  # type: ignore[attr-defined]
        try:
            while True:
                line = self.rfile.readline(8192)
                if not line or line in (b"\r\n", b"\n"):
                    return
                try:
                    method, target, version = (
                        line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    self._respond(400, b'{"error": "malformed request line"}', False)
                    return
                keep_alive = version == "HTTP/1.1"
                trace_parent = ""
                while True:  # drain headers: Connection: and the trace id
                    header = self.rfile.readline(8192)
                    if header in (b"\r\n", b"\n", b""):
                        break
                    lowered = header.decode("latin-1").strip().lower()
                    if lowered.startswith("connection:"):
                        value = lowered.partition(":")[2].strip()
                        keep_alive = value != "close" and (
                            keep_alive or value == "keep-alive"
                        )
                    elif lowered.startswith(TRACE_HEADER + ":"):
                        trace_parent = lowered.partition(":")[2].strip()
                if method != "GET":
                    self._respond(
                        405, b'{"error": "only GET is supported"}', keep_alive
                    )
                else:
                    status, body, content_type = app.handle_target(
                        target, trace_parent
                    )
                    extra = (
                        f"Retry-After: {app.retry_after_s}\r\n".encode()
                        if status == 503
                        else b""
                    )
                    self._respond(
                        status, body, keep_alive, extra, content_type
                    )
                if not keep_alive:
                    return
        except (TimeoutError, socket.timeout, ConnectionError, BrokenPipeError):
            return

    def _respond(
        self,
        status: int,
        body: bytes,
        keep_alive: bool,
        extra: bytes = b"",
        content_type: bytes = _JSON_TYPE,
    ) -> None:
        reason = _REASONS.get(status, "OK")
        connection = b"keep-alive" if keep_alive else b"close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n".encode()
            + b"Content-Type: "
            + content_type
            + b"\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Connection: "
            + connection
            + b"\r\n"
            + extra
            + b"\r\n"
        )
        self.wfile.write(head + body)
        self.wfile.flush()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


# --- small helpers (public: the cluster coordinator reuses them so its
# --- wire format stays byte-identical with the single-process server) --------


def encode_json(payload: Any) -> bytes:
    """The one JSON encoding used on the wire (compact separators)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def endpoint_of(path: str) -> str:
    head = path.lstrip("/").split("/", 1)[0]
    return head or "root"


def parse_query(raw_query: str) -> dict[str, str]:
    if not raw_query:
        return {}
    params: dict[str, str] = {}
    for piece in raw_query.split("&"):
        key, _, value = piece.partition("=")
        if "%" in value or "+" in value:
            value = unquote_plus(value)
        params[key] = value
    return params


def int_param(value: str, name: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ServeError(f"{name} must be an integer, got {value!r}") from None


def float_param(value: str, name: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ServeError(f"{name} must be a number, got {value!r}") from None


def parse_address_list(raw: str) -> list[int]:
    """Parse the ``?addresses=a,b,c`` batch form."""
    addresses = [int_param(part, "addresses") for part in raw.split(",") if part]
    if not addresses:
        raise ServeError("addresses must be a comma-separated list")
    return addresses


def parse_near_query(params: dict[str, str]) -> tuple[dict[str, Any], int]:
    """Parse ``/near`` parameters into ``(query, limit)``.

    The returned query dict is exactly the one echoed in the response
    body (key order included); ``limit`` is the result-count cap —
    ``k`` for nearest-neighbour queries, ``limit`` for disc queries.
    """
    if "lat" not in params or "lon" not in params:
        raise ServeError("near requires ?lat=&lon=")
    lat = float_param(params["lat"], "lat")
    lon = float_param(params["lon"], "lon")
    if "radius" in params:
        radius = float_param(params["radius"], "radius")
        limit = int_param(params.get("limit", "1000"), "limit")
        return {"lat": lat, "lon": lon, "radius": radius}, limit
    k = int_param(params.get("k", "1"), "k")
    return {"lat": lat, "lon": lon, "k": k}, k


def parse_as_path(path: str) -> int:
    """Extract the ASN from an ``/as/<asn>`` path."""
    _, _, tail = path.lstrip("/").partition("/")
    if not tail:
        raise ServeError("expected /as/<asn>")
    return int_param(tail, "asn")


def locate_miss_message(address: int) -> str:
    return f"address {address} is not in this snapshot"


def as_miss_message(asn: int) -> str:
    return f"AS {asn} is not in this snapshot"


def preference_payload(
    pref: DistancePreference, params: dict[str, str]
) -> dict[str, Any]:
    """The ``/distance-preference`` response body for a computed curve.

    Shared between the single-process server (curve from its own index)
    and the coordinator (curve rebuilt from merged shard histograms) so
    both emit byte-identical JSON.
    """
    payload: dict[str, Any] = {
        "region": pref.region,
        "bin_miles": pref.bin_miles,
        "n_nodes": pref.n_nodes,
        "n_bins": int(pref.bin_left.size),
    }
    if "d" in params:
        d = float_param(params["d"], "d")
        if d < 0:
            raise ServeError(f"distance must be >= 0, got {d}")
        payload["d"] = d
        payload["f_hat"] = f_hat_at(pref, d)
    else:
        f_hat = [(float(v) if v == v else None) for v in pref.f_hat.tolist()]
        payload["bin_left"] = pref.bin_left.tolist()
        payload["f_hat"] = f_hat
        payload["link_counts"] = pref.link_counts.tolist()
        payload["pair_counts"] = pref.pair_counts.tolist()
    return payload


# Backwards-compatible private aliases (kept for older call sites).
_encode = encode_json
_endpoint_of = endpoint_of
_parse_query = parse_query
_int_param = int_param
_float_param = float_param
