"""Bounded retry with jittered exponential backoff.

One policy object, shared by every component that talks to a possibly
absent peer: :class:`~repro.serve.client.SnapshotClient` retries
connection-refused (a server still binding its socket, a coordinator
mid-restart), and the cluster's ``ShardClient`` uses the same policy to
pace re-dials of an ejected replica.

The delays are the classic *decorrelated-ish* ladder: attempt ``i``
waits ``base * 2**i`` capped at ``max_delay``, then jittered by a
uniform factor in ``[1 - jitter, 1 + jitter]`` so a fleet of clients
that failed together does not retry together.  The RNG is private and
OS-seeded by default (seedable for tests) — backoff noise must never
touch the experiment RNG streams.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

from repro.errors import ServeError

T = TypeVar("T")


@dataclass
class BackoffPolicy:
    """How often, and how patiently, to retry a failing call.

    Attributes:
        retries: retry attempts *after* the first try (0 = fail fast).
        base_delay_s: delay before the first retry.
        max_delay_s: cap on any single delay.
        jitter: uniform jitter fraction applied to each delay.
        seed: pins the jitter RNG (tests); None seeds from the OS.
    """

    retries: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.retries < 0 or self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ServeError("backoff retries and delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ServeError(f"jitter must be in [0, 1], got {self.jitter}")
        seed = os.urandom(16) if self.seed is None else self.seed
        object.__setattr__(self, "_rng", random.Random(seed))
        object.__setattr__(self, "_lock", threading.Lock())

    def delay_s(self, attempt: int) -> float:
        """The jittered delay before retry number ``attempt`` (0-based)."""
        raw = min(self.base_delay_s * (2.0**attempt), self.max_delay_s)
        if self.jitter == 0.0:
            return raw
        with self._lock:
            factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return raw * factor

    def delays(self) -> Iterator[float]:
        """One delay per allowed retry, in order."""
        for attempt in range(self.retries):
            yield self.delay_s(attempt)


def call_with_retries(
    fn: Callable[[], T],
    policy: BackoffPolicy,
    retry_on: tuple[type[BaseException], ...],
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` until it succeeds or the retry budget is spent.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately.  The final failure re-raises the last
    ``retry_on`` exception unchanged, so callers keep their precise
    error types.
    """
    last: BaseException | None = None
    for delay in policy.delays():
        try:
            return fn()
        except retry_on as exc:
            last = exc
            sleep(delay)
    try:
        return fn()
    except retry_on as exc:
        if last is not None:
            raise exc from last
        raise
