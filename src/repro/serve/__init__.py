"""Online query service over built snapshots.

The paper's processed datasets were shareable artefacts queried
repeatedly for per-address geolocation, origin-AS, and link-distance
questions; this package turns a serialized
:class:`~repro.datasets.mapped.MappedDataset` into a live, concurrent
query service:

- :mod:`repro.serve.index` — :class:`SnapshotIndex`: O(1)/O(log n)
  lookup structures built once per snapshot;
- :mod:`repro.serve.cache` — :class:`LruCache`: the response cache;
- :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesces
  concurrent point lookups into vectorised batches;
- :mod:`repro.serve.server` — :class:`SnapshotServer`: the threaded
  HTTP endpoint with backpressure;
- :mod:`repro.serve.client` — :class:`SnapshotClient`: a small stdlib
  client honouring the 503/Retry-After contract.

``repro serve`` / ``repro query`` are the CLI entry points;
``benchmarks/bench_serve.py`` is the load generator.
"""

from repro.errors import OverloadError, ServeError
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import LruCache
from repro.serve.client import ConnectError, QueryError, SnapshotClient
from repro.serve.index import AsSummary, PartitionData, SnapshotIndex
from repro.serve.retry import BackoffPolicy, call_with_retries
from repro.serve.server import SnapshotServer

__all__ = [
    "AsSummary",
    "BackoffPolicy",
    "ConnectError",
    "LruCache",
    "MicroBatcher",
    "OverloadError",
    "PartitionData",
    "QueryError",
    "ServeError",
    "SnapshotClient",
    "SnapshotIndex",
    "SnapshotServer",
    "call_with_retries",
]
