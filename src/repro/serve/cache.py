"""Thread-safe LRU response cache.

The query server caches *rendered responses* keyed on
``(endpoint, params, snapshot_hash)`` — the snapshot hash is part of the
key so a server restarted over a different snapshot can never serve
stale bytes, and entries need no invalidation (the index is immutable).

Implementation is a plain ``OrderedDict`` under one lock; the values the
server stores are small serialized payloads, so capacity is a count, not
a byte budget.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.errors import ServeError


class LruCache:
    """A bounded mapping that evicts the least recently used entry."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ServeError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> tuple[bool, Any]:
        """``(True, value)`` on a hit (refreshing recency), else ``(False, None)``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return True, self._entries[key]
            self._misses += 1
            return False, None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the oldest when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        """Number of cache hits so far."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Number of cache misses so far."""
        with self._lock:
            return self._misses

    def stats(self) -> dict:
        """JSON-ready hit/miss/occupancy summary."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "hit_ratio": (self._hits / total) if total else 0.0,
            }
