"""Indexed in-memory view of one snapshot, built once, queried many times.

A :class:`SnapshotIndex` loads a serialized :class:`MappedDataset` and
precomputes every lookup structure the query server needs so request
handling never touches O(n) scans:

- address -> node row via one sorted-array ``searchsorted`` (O(log n),
  vectorised for batches);
- node degree from the link table (one ``bincount`` at build);
- per-AS summaries (node/location counts, centroid, convex-hull extent,
  AS-graph degree) computed once for every mapped AS;
- a grid-bucketed spatial index (the paper's 75-arc-minute patches)
  backing nearest-node and radius queries by ring search;
- per-region distance-preference tables (Section V's ``f_hat(d)``),
  computed lazily on first request and memoised — pair counting is the
  one genuinely expensive build step, so cold start does not pay it.

The index is immutable after construction and safe for concurrent
readers; the only mutation is the memoised preference table behind a
lock.  Streaming updates go through :meth:`SnapshotIndex.apply_delta`,
which returns a *new* index with only the affected derived structures
re-computed — bit-identical to a from-scratch build of the patched
dataset.  The expensive derived tables can round-trip through a sidecar
``.npz`` (:meth:`SnapshotIndex.save_derived`) so restarts skip
recomputation when the snapshot hash still matches.
"""

from __future__ import annotations

import os
import threading
import time
import zipfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.bgp.table import UNMAPPED_ASN
from repro.core.distance import (
    EXACT_PAIR_LIMIT,
    N_BINS,
    PAPER_BIN_MILES,
    DistancePreference,
    exact_pair_counts_rows,
    f_hat_at,
    grid_pair_counts,
    preference_function,
)
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError, ServeError
from repro.geo.distance import haversine_miles, link_lengths_miles
from repro.geo.hull import convex_hull_area
from repro.geo.projection import WORLD_ALBERS
from repro.geo.regions import STUDY_REGIONS, Region, WORLD
from repro.obs.report import dataset_digest

#: Spatial-index cell edge in arc-minutes (the paper's patch size).
DEFAULT_CELL_ARCMIN = 75.0
#: Bin width for distance-preference tables of non-paper regions.
DEFAULT_BIN_MILES = 35.0
#: Miles per degree of latitude (conservative ring-search bound).
_MILES_PER_DEG = 69.0
#: On-disk format version of the derived-table sidecar.
_DERIVED_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class AsSummary:
    """Precomputed Section VI facts about one AS.

    Attributes:
        asn: the autonomous system number.
        n_nodes: nodes mapped to this AS.
        n_locations: distinct rounded locations among them.
        degree: degree in the observed AS graph.
        centroid_lat, centroid_lon: mean node position.
        hull_area_sq_miles: convex-hull extent (Albers projection).
    """

    asn: int
    n_nodes: int
    n_locations: int
    degree: int
    centroid_lat: float
    centroid_lon: float
    hull_area_sq_miles: float

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return asdict(self)


@dataclass
class PartitionData:
    """Full-snapshot facts a shard partition must answer from.

    A partition index holds only its owned slice of the node table, but
    some answers are facts about the *whole* snapshot: node degrees
    count links to nodes on other shards, AS summaries span shards, and
    distance-preference histograms are defined over region-restricted
    global row order.  This sidecar carries exactly those facts:

    Attributes:
        snapshot_hash: content digest of the **full** dataset — every
            shard of one snapshot agrees, so the coordinator can verify
            a consistent fleet.
        addr_lo, addr_hi: the owned half-open address range (None means
            unbounded on that side).
        degrees: full-table degree of each owned node, aligned with the
            partition's row order.
        as_records: precomputed ``/as`` payload per *owned* AS (an AS is
            owned by the shard whose range contains its minimum
            interface address, so exactly one shard answers).
        full_lats, full_lons: coordinates of **every** snapshot node
            (16 bytes/node — the one full-table residue a shard keeps,
            so region pair counting stays exact and lazy).
        owned_rows: global row indices this shard owns, ascending.
        owned_links: global link rows whose smaller endpoint row is
            owned — the disjoint link partition behind exact histogram
            merging.
        n_full_nodes: node count of the full snapshot.
    """

    snapshot_hash: str
    addr_lo: int | None
    addr_hi: int | None
    degrees: np.ndarray
    as_records: dict[int, dict]
    full_lats: np.ndarray
    full_lons: np.ndarray
    owned_rows: np.ndarray
    owned_links: np.ndarray
    n_full_nodes: int
    _owned_mask: np.ndarray | None = field(default=None, repr=False)

    @property
    def owned_mask(self) -> np.ndarray:
        """Boolean over global rows: True where this shard owns the row."""
        if self._owned_mask is None:
            mask = np.zeros(self.n_full_nodes, dtype=bool)
            mask[self.owned_rows] = True
            self._owned_mask = mask
        return self._owned_mask


class SnapshotIndex:
    """Read-optimised lookup structures over one mapped snapshot."""

    def __init__(
        self,
        dataset: MappedDataset,
        cell_arcmin: float = DEFAULT_CELL_ARCMIN,
        *,
        partition: PartitionData | None = None,
        derived: str | Path | None = None,
    ) -> None:
        start = time.perf_counter()
        self.dataset = dataset
        self.partition = partition
        self.cell_arcmin = float(cell_arcmin)
        # The content digest is lazy: a full-table sha over the dataset
        # costs milliseconds, and per-batch incremental patching should
        # not pay it — publishers and health endpoints force it when
        # they actually need it (see the snapshot_hash property).
        self._snapshot_hash: str | None = (
            partition.snapshot_hash if partition is not None else None
        )

        # Spatial grid geometry (cheap; the bucketing below may be
        # loaded from a sidecar instead of recomputed).
        self._region = WORLD
        self._cell_deg = cell_arcmin / 60.0
        self._n_rows = max(1, int(np.ceil(self._region.lat_span / self._cell_deg)))
        self._n_cols = max(1, int(np.ceil(self._region.lon_span / self._cell_deg)))

        # Derived-table sidecar: reuse a previous build's sorted address
        # index and grid when every identity field matches; any
        # mismatch (stale hash, other cell size, corrupt file) falls
        # back to a fresh rebuild.
        loaded = None
        if derived is not None:
            loaded = _load_derived(
                Path(derived),
                snapshot_hash=self.snapshot_hash,
                cell_arcmin=self.cell_arcmin,
                addr_lo=None if partition is None else partition.addr_lo,
                addr_hi=None if partition is None else partition.addr_hi,
                n_nodes=dataset.n_nodes,
            )
        self.derived_loaded = loaded is not None

        # Address -> row: one sort at build, binary search per lookup.
        if loaded is not None:
            self._addr_order = loaded["addr_order"]
        else:
            self._addr_order = np.argsort(dataset.addresses, kind="stable")
        self._sorted_addresses = dataset.addresses[self._addr_order]

        # Node degree from the link table.  A partition's degrees are a
        # slice of the full table (links to other shards still count).
        if partition is not None:
            self._degrees = partition.degrees
        elif loaded is not None:
            self._degrees = loaded["degrees"]
        else:
            self._degrees = np.zeros(dataset.n_nodes, dtype=np.int64)
            if dataset.n_links:
                np.add.at(self._degrees, dataset.links.ravel(), 1)

        # Spatial grid: every node bucketed into a 75' world patch.
        if loaded is not None:
            self._cells = loaded["cells"]
            self._cell_order = loaded["cell_order"]
        else:
            self._cells = self._cell_of(dataset.lats, dataset.lons)
            self._cell_order = np.argsort(self._cells, kind="stable")
        sorted_cells = self._cells[self._cell_order]
        uniq, starts = np.unique(sorted_cells, return_index=True)
        stops = np.append(starts[1:], sorted_cells.size)
        self._cell_slices: dict[int, tuple[int, int]] = {
            int(c): (int(a), int(b)) for c, a, b in zip(uniq, starts, stops)
        }

        # Per-AS summaries.  A partition ships precomputed full-snapshot
        # records for its owned ASes instead (see build_partition).
        self._as_records: dict[int, dict] | None = None
        if partition is not None:
            self._as_nodes: dict[int, np.ndarray] = {}
            self._as_summaries: dict[int, AsSummary] = {}
            self._as_records = partition.as_records
            self._as_edge_mult: dict[tuple[int, int], int] | None = None
            self._as_degrees: dict[int, int] | None = None
        else:
            self._as_edge_mult = _as_edge_table(dataset)
            self._as_degrees = _degrees_from_edges(self._as_edge_mult)
            self._as_nodes, self._as_summaries = _as_tables(
                dataset, as_degrees=self._as_degrees
            )

        # Distance-preference tables: lazy, memoised per region.
        self._pref_lock = threading.Lock()
        self._pref_tables: dict[str, DistancePreference | AnalysisError] = {}
        self._partial_tables: dict[str, dict | AnalysisError] = {}

        self.gen = 1
        self.built_unix = time.time()
        self.build_seconds = time.perf_counter() - start

    @property
    def snapshot_hash(self) -> str:
        """Content digest of the full dataset (computed lazily, cached)."""
        if self._snapshot_hash is None:
            self._snapshot_hash = dataset_digest(self.dataset)
        return self._snapshot_hash

    # -- partition builds ----------------------------------------------------

    @classmethod
    def build_partition(
        cls,
        source: MappedDataset | str | Path,
        addr_lo: int | None,
        addr_hi: int | None,
        cell_arcmin: float = DEFAULT_CELL_ARCMIN,
        *,
        derived: str | Path | None = None,
    ) -> "SnapshotIndex":
        """Build the index for one contiguous address range of a snapshot.

        The returned index owns the nodes with ``addr_lo <= address <
        addr_hi`` (``None`` leaves a side unbounded) and answers every
        owned-row query bit-identically to a full index: degrees are
        sliced from the full link table, ``/as`` records for owned ASes
        (minimum interface address in range) are computed over the full
        snapshot, and ``snapshot_hash`` is the full dataset's digest so
        all shards of one snapshot agree.

        The full table is streamed through this builder once and then
        dropped; what a shard retains is its owned slice plus one
        16-byte-per-node coordinate sidecar (for exact distributed pair
        counting) — not the full snapshot.
        """
        if isinstance(source, MappedDataset):
            dataset = source
        else:
            from repro.datasets.serialize import load_dataset

            dataset = load_dataset(source)
        addresses = dataset.addresses
        owned_mask = np.ones(dataset.n_nodes, dtype=bool)
        if addr_lo is not None:
            owned_mask &= addresses >= addr_lo
        if addr_hi is not None:
            owned_mask &= addresses < addr_hi
        owned_rows = np.flatnonzero(owned_mask)

        degrees = np.zeros(dataset.n_nodes, dtype=np.int64)
        local = np.full(dataset.n_nodes, -1, dtype=np.intp)
        local[owned_rows] = np.arange(owned_rows.size)
        if dataset.n_links:
            np.add.at(degrees, dataset.links.ravel(), 1)
            both = owned_mask[dataset.links[:, 0]] & owned_mask[dataset.links[:, 1]]
            part_links = local[dataset.links[both]]
            lower = np.minimum(dataset.links[:, 0], dataset.links[:, 1])
            owned_links = dataset.links[owned_mask[lower]]
        else:
            part_links = np.empty((0, 2), dtype=np.intp)
            owned_links = np.empty((0, 2), dtype=np.intp)
        if not part_links.size:
            part_links = np.empty((0, 2), dtype=np.intp)

        part = MappedDataset(
            label=dataset.label,
            kind=dataset.kind,
            addresses=addresses[owned_rows],
            lats=dataset.lats[owned_rows],
            lons=dataset.lons[owned_rows],
            asns=dataset.asns[owned_rows],
            links=part_links,
        )

        # AS ownership: the shard whose range holds the AS's minimum
        # interface address serves its (full-snapshot) record.
        owned_asns: set[int] = set()
        if dataset.n_nodes:
            order = np.lexsort((addresses, dataset.asns))
            sorted_asns = dataset.asns[order]
            uniq, starts = np.unique(sorted_asns, return_index=True)
            min_addrs = addresses[order[starts]]
            for asn, min_addr in zip(uniq, min_addrs):
                if int(asn) == UNMAPPED_ASN:
                    continue
                if (addr_lo is None or min_addr >= addr_lo) and (
                    addr_hi is None or min_addr < addr_hi
                ):
                    owned_asns.add(int(asn))
        as_nodes, as_summaries = _as_tables(dataset, only=owned_asns)
        as_records = {
            asn: {
                **summary.to_dict(),
                "sample_addresses": [
                    int(addresses[row]) for row in as_nodes[asn][:5]
                ],
            }
            for asn, summary in as_summaries.items()
        }

        pdata = PartitionData(
            snapshot_hash=dataset_digest(dataset),
            addr_lo=None if addr_lo is None else int(addr_lo),
            addr_hi=None if addr_hi is None else int(addr_hi),
            degrees=degrees[owned_rows],
            as_records=as_records,
            full_lats=dataset.lats,
            full_lons=dataset.lons,
            owned_rows=owned_rows,
            owned_links=owned_links,
            n_full_nodes=dataset.n_nodes,
        )
        return cls(part, cell_arcmin, partition=pdata, derived=derived)

    # -- incremental updates -------------------------------------------------

    def apply_delta(self, batch) -> "SnapshotIndex":
        """A new index for this snapshot patched by one delta batch.

        Only the derived structures the batch actually touches are
        re-computed; everything else is shared with (or copied from)
        this index:

        - the sorted address run gains the added addresses by
          merge-insertion (``searchsorted`` + ``insert``);
        - degrees extend by zeros and count only the new link rows;
        - only dirty grid cells (cells gaining or losing a node) are
          re-grouped; untouched cells splice through unchanged;
        - only dirty ASes (membership, coordinates, or AS-graph degree
          changed) get their summary rebuilt, driven by a maintained
          AS-edge multiset;
        - distance-preference tables reset to lazy (their inputs may
          have changed anywhere).

        The result is **bit-identical** to ``SnapshotIndex(patched
        dataset)`` built from scratch — same arrays, same query answers
        — because every incremental step reproduces the from-scratch
        computation on identical inputs (insertion into a sorted unique
        run equals a stable argsort; integer degree addition commutes;
        the Albers projection and all summary statistics are
        elementwise over each AS's own rows).  ``gen`` increments and
        ``built_unix``/``build_seconds`` describe the patch.

        Raises:
            IngestError: when the batch does not fit this snapshot.
            ServeError: on a partition index — deltas apply to the full
                snapshot; shards receive whole published generations.
        """
        if self.partition is not None:
            raise ServeError(
                "apply_delta requires a full (non-partition) index"
            )
        from repro.ingest.apply import patch_dataset

        start = time.perf_counter()
        dataset, info = patch_dataset(self.dataset, batch)
        new = object.__new__(SnapshotIndex)
        new.dataset = dataset
        new.partition = None
        new.cell_arcmin = self.cell_arcmin
        new.derived_loaded = False
        new._snapshot_hash = None  # lazy, like a fresh build's

        n_old = info.n_old_nodes
        added = info.added_rows
        moved = info.moved_rows

        # Sorted address run: merge-insert the (unique) added addresses.
        if added.size:
            add_sort = np.argsort(dataset.addresses[added], kind="stable")
            add_addrs = dataset.addresses[added][add_sort]
            pos = np.searchsorted(self._sorted_addresses, add_addrs)
            new._sorted_addresses = np.insert(
                self._sorted_addresses, pos, add_addrs
            )
            new._addr_order = np.insert(
                self._addr_order, pos, added[add_sort]
            )
        else:
            new._sorted_addresses = self._sorted_addresses
            new._addr_order = self._addr_order

        # Degrees: extend by zeros, count only the appended links.
        degrees = np.concatenate(
            [self._degrees, np.zeros(added.size, dtype=np.int64)]
        )
        if info.new_link_rows.size:
            np.add.at(
                degrees, dataset.links[info.new_link_rows].ravel(), 1
            )
        new._degrees = degrees

        # Grid: re-group only the dirty cells.
        new._region = self._region
        new._cell_deg = self._cell_deg
        new._n_rows = self._n_rows
        new._n_cols = self._n_cols
        cells = np.concatenate(
            [self._cells, np.zeros(added.size, dtype=self._cells.dtype)]
        )
        changed = np.unique(np.concatenate([added, moved])).astype(np.intp)
        moved_old = moved[moved < n_old]
        if changed.size:
            cells[changed] = new._cell_of(
                dataset.lats[changed], dataset.lons[changed]
            )
            changed_cells = cells[changed]
            dirty = set(changed_cells.tolist())
            dirty.update(self._cells[moved_old].tolist())
            parts: list[np.ndarray] = []
            slices: dict[int, tuple[int, int]] = {}
            offset = 0
            for cell in sorted(set(self._cell_slices) | dirty):
                if cell in dirty:
                    lo_hi = self._cell_slices.get(cell)
                    if lo_hi is None:
                        members = np.empty(0, dtype=np.intp)
                    else:
                        members = self._cell_order[lo_hi[0]:lo_hi[1]]
                    if moved_old.size:
                        members = members[~np.isin(members, moved_old)]
                    entering = changed[changed_cells == cell]
                    members = np.sort(
                        np.concatenate([members, entering])
                    )
                else:
                    lo, hi = self._cell_slices[cell]
                    members = self._cell_order[lo:hi]
                if members.size:
                    parts.append(members)
                    slices[cell] = (offset, offset + members.size)
                    offset += members.size
            new._cell_order = (
                np.concatenate(parts) if parts
                else np.empty(0, dtype=np.intp)
            )
            new._cell_slices = slices
        else:
            new._cell_order = self._cell_order
            new._cell_slices = self._cell_slices
        new._cells = cells

        # AS tables: maintain the edge multiset, rebuild dirty ASes.
        new._as_records = None
        as_nodes = dict(self._as_nodes)
        edge_mult = dict(self._as_edge_mult or {})
        as_degrees = dict(self._as_degrees or {})
        dirty_as: set[int] = set()

        remapped = info.remapped_rows[info.remapped_rows < n_old]
        if remapped.size:
            old_as = self.dataset.asns[remapped]
            new_as = dataset.asns[remapped]
            really = old_as != new_as
            remapped = remapped[really]
            old_as, new_as = old_as[really], new_as[really]
        else:
            old_as = new_as = np.empty(0, dtype=np.int64)
        for asn in np.unique(old_as).tolist():
            asn = int(asn)
            if asn == UNMAPPED_ASN:
                continue
            gone = remapped[old_as == asn]
            members = as_nodes[asn][~np.isin(as_nodes[asn], gone)]
            if members.size:
                as_nodes[asn] = members
            else:
                del as_nodes[asn]
            dirty_as.add(asn)
        for asn in np.unique(new_as).tolist():
            asn = int(asn)
            if asn == UNMAPPED_ASN:
                continue
            came = np.sort(remapped[new_as == asn])
            members = as_nodes.get(asn, np.empty(0, dtype=np.intp))
            as_nodes[asn] = np.insert(
                members, np.searchsorted(members, came), came
            )
            dirty_as.add(asn)
        if added.size:
            added_as = dataset.asns[added]
            for asn in np.unique(added_as).tolist():
                asn = int(asn)
                if asn == UNMAPPED_ASN:
                    continue
                rows = added[added_as == asn]
                members = as_nodes.get(asn, np.empty(0, dtype=np.intp))
                as_nodes[asn] = np.concatenate([members, rows])
                dirty_as.add(asn)
        if moved.size:
            for asn in np.unique(dataset.asns[moved]).tolist():
                asn = int(asn)
                if asn != UNMAPPED_ASN:
                    dirty_as.add(asn)

        def bump(asn_a: int, asn_b: int, delta: int) -> None:
            # One link's worth of AS-edge multiplicity; 0 <-> positive
            # transitions change distinct-edge degrees.
            if asn_a == UNMAPPED_ASN or asn_b == UNMAPPED_ASN:
                return
            if asn_a == asn_b:
                return
            key = (min(asn_a, asn_b), max(asn_a, asn_b))
            before = edge_mult.get(key, 0)
            after = before + delta
            if after:
                edge_mult[key] = after
            else:
                edge_mult.pop(key, None)
            if (before == 0) != (after == 0):
                step = 1 if after else -1
                for asn in key:
                    total = as_degrees.get(asn, 0) + step
                    if total:
                        as_degrees[asn] = total
                    else:
                        as_degrees.pop(asn, None)
                    dirty_as.add(asn)

        if remapped.size and self.dataset.n_links:
            links = self.dataset.links
            incident = np.flatnonzero(
                np.isin(links[:, 0], remapped)
                | np.isin(links[:, 1], remapped)
            )
            for li in incident.tolist():
                i, j = int(links[li, 0]), int(links[li, 1])
                bump(
                    int(self.dataset.asns[i]),
                    int(self.dataset.asns[j]),
                    -1,
                )
                bump(int(dataset.asns[i]), int(dataset.asns[j]), 1)
        for li in info.new_link_rows.tolist():
            i, j = int(dataset.links[li, 0]), int(dataset.links[li, 1])
            bump(int(dataset.asns[i]), int(dataset.asns[j]), 1)

        as_summaries = dict(self._as_summaries)
        for asn in sorted(dirty_as):
            nodes = as_nodes.get(asn)
            if nodes is None or nodes.size == 0:
                as_nodes.pop(asn, None)
                as_summaries.pop(asn, None)
                continue
            xs, ys = WORLD_ALBERS.project(
                dataset.lats[nodes], dataset.lons[nodes]
            )
            as_summaries[asn] = _as_summary(
                dataset, asn, nodes, int(as_degrees.get(asn, 0)), xs, ys
            )
        new._as_nodes = as_nodes
        new._as_summaries = as_summaries
        new._as_edge_mult = edge_mult
        new._as_degrees = as_degrees

        new._pref_lock = threading.Lock()
        new._pref_tables = {}
        new._partial_tables = {}
        new.gen = self.gen + 1
        new.built_unix = time.time()
        new.build_seconds = time.perf_counter() - start
        return new

    # -- derived-table sidecar -----------------------------------------------

    def save_derived(self, path: str | Path) -> None:
        """Persist the derived tables to a sidecar ``.npz``, atomically.

        Stores the sorted address index, degrees, and grid bucketing
        keyed by snapshot hash, cell size, and (for a partition) the
        owned address range, so a restart over the same snapshot skips
        recomputation; any identity mismatch at load time falls back to
        a fresh build.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        bounds = np.array(
            [
                -1 if self.partition is None or self.partition.addr_lo is None
                else self.partition.addr_lo,
                -1 if self.partition is None or self.partition.addr_hi is None
                else self.partition.addr_hi,
            ],
            dtype=np.int64,
        )
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as handle:
            np.savez_compressed(
                handle,
                format_version=np.int64(_DERIVED_FORMAT_VERSION),
                snapshot_hash=np.str_(self.snapshot_hash),
                cell_arcmin=np.float64(self.cell_arcmin),
                bounds=bounds,
                n_nodes=np.int64(self.dataset.n_nodes),
                addr_order=self._addr_order.astype(np.int64),
                degrees=self._degrees.astype(np.int64),
                cells=self._cells.astype(np.int64),
                cell_order=self._cell_order.astype(np.int64),
            )
        os.replace(tmp, path)

    # -- address lookups -----------------------------------------------------

    def row_of(self, address: int) -> int:
        """Node row of an address, or -1 when the snapshot lacks it."""
        pos = int(np.searchsorted(self._sorted_addresses, address))
        if (
            pos < self._sorted_addresses.size
            and self._sorted_addresses[pos] == address
        ):
            return int(self._addr_order[pos])
        return -1

    def rows_of(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`row_of`: one searchsorted for the whole batch."""
        addresses = np.asarray(addresses, dtype=np.int64)
        pos = np.searchsorted(self._sorted_addresses, addresses)
        pos = np.clip(pos, 0, max(self._sorted_addresses.size - 1, 0))
        if self._sorted_addresses.size == 0:
            return np.full(addresses.shape, -1, dtype=np.intp)
        found = self._sorted_addresses[pos] == addresses
        rows = np.where(found, self._addr_order[pos], -1)
        return rows.astype(np.intp)

    def node_record(self, row: int) -> dict:
        """JSON-ready facts about one node row."""
        ds = self.dataset
        asn = int(ds.asns[row])
        return {
            "address": int(ds.addresses[row]),
            "lat": float(ds.lats[row]),
            "lon": float(ds.lons[row]),
            "asn": None if asn == UNMAPPED_ASN else asn,
            "degree": int(self._degrees[row]),
        }

    def locate(self, address: int) -> dict | None:
        """Coordinates, origin AS, and degree of one address (or None)."""
        row = self.row_of(address)
        return None if row < 0 else self.node_record(row)

    def locate_many(self, addresses: list[int]) -> list[dict | None]:
        """Batch :meth:`locate` through the vectorised row lookup.

        The micro-batcher's flush path: one ``searchsorted`` resolves
        every address in the batch.
        """
        if not addresses:
            return []
        rows = self.rows_of(np.asarray(addresses, dtype=np.int64))
        return [
            None if row < 0 else self.node_record(int(row)) for row in rows
        ]

    # -- spatial queries -----------------------------------------------------

    def _cell_of(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Flat grid cell per point; out-of-box points clip to the edge."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        rows = np.clip(
            np.floor((lats - self._region.south) / self._cell_deg).astype(np.intp),
            0,
            self._n_rows - 1,
        )
        cols = np.clip(
            np.floor((lons - self._region.west) / self._cell_deg).astype(np.intp),
            0,
            self._n_cols - 1,
        )
        return rows * self._n_cols + cols

    def _cell_nodes(self, row: int, col: int) -> np.ndarray:
        """Node rows bucketed in grid cell (row, col); empty when none."""
        lo_hi = self._cell_slices.get(row * self._n_cols + col)
        if lo_hi is None:
            return np.empty(0, dtype=np.intp)
        lo, hi = lo_hi
        return self._cell_order[lo:hi]

    def _wrap_cols(self, col: int, reach: int) -> list[int]:
        """Distinct columns within cyclic distance ``reach`` of ``col``.

        Longitude wraps at the antimeridian, so the column axis is
        cyclic: a query near lon 180 must also search cells near
        lon -180.  When the window covers the whole circle, every
        column qualifies exactly once.
        """
        if 2 * reach + 1 >= self._n_cols:
            return list(range(self._n_cols))
        return [(c % self._n_cols) for c in range(col - reach, col + reach + 1)]

    def _ring_nodes(self, row: int, col: int, ring: int) -> np.ndarray:
        """Node rows in all cells at cyclic Chebyshev distance ``ring``.

        Row distance is plain (latitude does not wrap); column distance
        is cyclic.  Successive rings partition the grid, so ring search
        never revisits a cell.
        """
        if ring == 0:
            return self._cell_nodes(row, col)
        parts: list[np.ndarray] = []
        max_dcol = self._n_cols // 2
        lo_r, hi_r = row - ring, row + ring
        for c in self._wrap_cols(col, min(ring, max_dcol)):
            if lo_r >= 0:
                parts.append(self._cell_nodes(lo_r, c))
            if hi_r < self._n_rows:
                parts.append(self._cell_nodes(hi_r, c))
        if ring <= max_dcol:
            # Side columns at cyclic distance exactly ``ring``; for an
            # even column count the two sides of the widest ring are
            # the same (antipodal) column — dedupe.
            sides = {(col - ring) % self._n_cols, (col + ring) % self._n_cols}
            for r in range(row - ring + 1, row + ring):
                if 0 <= r < self._n_rows:
                    for c in sides:
                        parts.append(self._cell_nodes(r, c))
        if not parts:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(parts)

    def _unexplored_bound(self, lat: float, ring: int) -> float:
        """Sound lower bound (miles) on the distance to unexplored cells.

        After fully exploring rings ``0..ring-1``, every unexplored
        point is either ``>= ring-1`` grid rows away in latitude (the
        latitude-difference distance bounds the great circle from
        below) or ``>= ring-1`` columns away, whose bound is the exact
        spherical distance from the query to a meridian ``(ring-1)``
        cells of longitude away — which goes to zero near the poles
        instead of overestimating, so a polar query keeps searching
        until the column window has wrapped the whole circle (at which
        point only the latitude bound remains).
        """
        d_lat = (ring - 1) * self._cell_deg * _MILES_PER_DEG
        if 2 * (ring - 1) + 1 >= self._n_cols:
            return d_lat
        dlam = min((ring - 1) * self._cell_deg, 90.0)
        sin_cross = np.cos(np.radians(lat)) * np.sin(np.radians(dlam))
        d_lon = float(
            np.degrees(np.arcsin(min(1.0, max(0.0, sin_cross))))
            * _MILES_PER_DEG
        )
        return min(d_lat, d_lon)

    def nearest(self, lat: float, lon: float, k: int = 1) -> list[dict]:
        """The ``k`` nodes nearest a point, closest first.

        Ring search over the patch grid: rings expand until the best
        ``k`` exact distances cannot be beaten by any unexplored cell.

        Raises:
            ServeError: on an invalid coordinate or ``k``.
        """
        lat, lon = _check_point(lat, lon)
        if k < 1:
            raise ServeError(f"k must be >= 1, got {k}")
        if self.dataset.n_nodes == 0:
            return []
        query_cell = self._cell_of(np.array([lat]), np.array([lon]))[0]
        row, col = divmod(int(query_cell), self._n_cols)
        max_ring = max(self._n_rows, self._n_cols)
        cand_rows: list[np.ndarray] = []
        cand_dists: list[np.ndarray] = []
        n_found = 0
        for ring in range(max_ring + 1):
            if n_found >= k:
                kth = np.sort(np.concatenate(cand_dists))[k - 1]
                if kth <= self._unexplored_bound(lat, ring):
                    break
            nodes = self._ring_nodes(row, col, ring)
            if nodes.size:
                dists = np.asarray(
                    haversine_miles(
                        lat, lon, self.dataset.lats[nodes], self.dataset.lons[nodes]
                    )
                )
                cand_rows.append(nodes)
                cand_dists.append(dists)
                n_found += nodes.size
        all_rows = np.concatenate(cand_rows)
        all_dists = np.concatenate(cand_dists)
        # Ties break on address so the ordering is a total order that
        # shard-local top-k lists merge into without reshuffling.
        order = np.lexsort(
            (self.dataset.addresses[all_rows], all_dists)
        )[:k]
        return [
            {**self.node_record(int(all_rows[i])), "miles": float(all_dists[i])}
            for i in order
        ]

    def within_radius(
        self, lat: float, lon: float, radius_miles: float, limit: int = 1000
    ) -> list[dict]:
        """All nodes within ``radius_miles`` of a point, closest first.

        Raises:
            ServeError: on an invalid coordinate or radius.
        """
        lat, lon = _check_point(lat, lon)
        if not np.isfinite(radius_miles) or radius_miles <= 0:
            raise ServeError(f"radius must be positive, got {radius_miles}")
        if self.dataset.n_nodes == 0:
            return []
        query_cell = self._cell_of(np.array([lat]), np.array([lon]))[0]
        row, col = divmod(int(query_cell), self._n_cols)
        radius_deg = radius_miles / _MILES_PER_DEG
        d_rows = int(np.ceil(radius_deg / self._cell_deg)) + 1
        # Column reach: a point within the radius lies within the
        # spherical distance-to-meridian bound, which collapses near the
        # poles — once the disc can reach a pole, longitude stops
        # constraining and every column is in play.
        cos_lat = float(np.cos(np.radians(lat)))
        sin_r = float(np.sin(np.radians(min(radius_deg, 90.0))))
        if abs(lat) + radius_deg >= 90.0 or sin_r >= cos_lat:
            d_cols = self._n_cols  # _wrap_cols caps this at a full circle
        else:
            max_dlam = float(np.degrees(np.arcsin(sin_r / cos_lat)))
            d_cols = int(np.ceil(max_dlam / self._cell_deg)) + 1
        parts: list[np.ndarray] = []
        for r in range(max(0, row - d_rows), min(self._n_rows, row + d_rows + 1)):
            for c in self._wrap_cols(col, d_cols):
                nodes = self._cell_nodes(r, c)
                if nodes.size:
                    parts.append(nodes)
        if not parts:
            return []
        nodes = np.concatenate(parts)
        dists = np.asarray(
            haversine_miles(
                lat, lon, self.dataset.lats[nodes], self.dataset.lons[nodes]
            )
        )
        keep = dists <= radius_miles
        nodes, dists = nodes[keep], dists[keep]
        order = np.lexsort((self.dataset.addresses[nodes], dists))[:limit]
        return [
            {**self.node_record(int(nodes[i])), "miles": float(dists[i])}
            for i in order
        ]

    # -- AS summaries --------------------------------------------------------

    def as_summary(self, asn: int) -> AsSummary | None:
        """The precomputed summary of one AS (None when unknown)."""
        if self._as_records is not None:
            record = self._as_records.get(asn)
            if record is None:
                return None
            return AsSummary(
                **{k: v for k, v in record.items() if k != "sample_addresses"}
            )
        return self._as_summaries.get(asn)

    def as_nodes(self, asn: int) -> np.ndarray:
        """Node rows mapped to an AS (empty when unknown)."""
        return self._as_nodes.get(asn, np.empty(0, dtype=np.intp))

    def as_record(self, asn: int) -> dict | None:
        """The full ``/as/<asn>`` payload (None when unknown).

        Summary fields plus up to five sample addresses in dataset
        order.  On a partition this is the precomputed full-snapshot
        record of an *owned* AS — byte-for-byte what a single-process
        index would build — so the coordinator can relay one shard's
        answer verbatim.
        """
        if self._as_records is not None:
            return self._as_records.get(asn)
        summary = self._as_summaries.get(asn)
        if summary is None:
            return None
        nodes = self._as_nodes[asn]
        sample = [int(self.dataset.addresses[row]) for row in nodes[:5]]
        return {**summary.to_dict(), "sample_addresses": sample}

    @property
    def n_ases(self) -> int:
        """Number of mapped ASes (owned ASes, on a partition)."""
        if self._as_records is not None:
            return len(self._as_records)
        return len(self._as_summaries)

    def as_summaries(self) -> dict[int, AsSummary]:
        """Every maintained AS summary, keyed by ASN.

        A live view of the dirty-set-maintained table (callers must not
        mutate it); only available on a full index — a partition serves
        per-AS records instead.
        """
        if self._as_records is not None:
            raise ServeError("as_summaries is unavailable on a partition")
        return self._as_summaries

    # -- distance preference -------------------------------------------------

    def distance_preference(self, region: Region) -> DistancePreference:
        """The memoised ``f_hat(d)`` table for a region.

        The first call per region pays the pair-counting cost; later
        calls (and :meth:`f_of_d`) are dictionary hits.

        Raises:
            AnalysisError: when the region holds too few nodes; the
                failure itself is memoised so retries stay cheap.
            ServeError: on a partition index, whose local node subset
                would silently bias the table — shards answer through
                :meth:`preference_partial` instead.
        """
        if self.partition is not None:
            raise ServeError(
                "this index serves an address partition; merge "
                "preference_partial histograms across shards instead"
            )
        with self._pref_lock:
            cached = self._pref_tables.get(region.name)
        if cached is None:
            bin_miles = PAPER_BIN_MILES.get(region.name, DEFAULT_BIN_MILES)
            try:
                cached = preference_function(
                    self.dataset, region, bin_miles, n_bins=N_BINS
                )
            except AnalysisError as exc:
                cached = exc
            with self._pref_lock:
                cached = self._pref_tables.setdefault(region.name, cached)
        if isinstance(cached, AnalysisError):
            raise cached
        return cached

    def f_of_d(self, region: Region, d: float) -> float | None:
        """``f_hat`` at distance ``d`` (None outside the populated range).

        Raises:
            AnalysisError: when the region has no preference table.
            ServeError: on a negative distance.
        """
        if not np.isfinite(d) or d < 0:
            raise ServeError(f"distance must be >= 0, got {d}")
        pref = self.distance_preference(region)
        return f_hat_at(pref, d)

    def preference_partial(self, region: Region) -> dict:
        """This shard's share of a region's preference histograms.

        Returns a JSON-ready dict of integer ``link_counts`` /
        ``pair_counts`` partials plus the region-total node count.
        Summed across all shards of one snapshot, the histograms equal
        the single-process :func:`preference_function` result exactly:
        links and node pairs are each owned by precisely one shard (the
        one owning the smaller global row), and integer addition
        commutes.  Memoised per region, failures included.

        Raises:
            AnalysisError: when the whole region (not just this shard's
                slice) holds too few nodes — the same error, with the
                same message, a single-process index raises.
            ServeError: when this index is not a partition.
        """
        if self.partition is None:
            raise ServeError("preference_partial requires a partition index")
        with self._pref_lock:
            cached = self._partial_tables.get(region.name)
        if cached is None:
            try:
                cached = self._compute_partial(region)
            except AnalysisError as exc:
                cached = exc
            with self._pref_lock:
                cached = self._partial_tables.setdefault(region.name, cached)
        if isinstance(cached, AnalysisError):
            raise cached
        return cached

    def _compute_partial(self, region: Region) -> dict:
        part = self.partition
        assert part is not None
        bin_miles = PAPER_BIN_MILES.get(region.name, DEFAULT_BIN_MILES)
        mask = region.contains_mask(part.full_lats, part.full_lons)
        region_rows = np.flatnonzero(mask)
        n_region = int(region_rows.size)
        if n_region < 10:
            # Replicates the single-process message exactly, so the
            # coordinator can relay any shard's 404 verbatim.
            raise AnalysisError(
                f"region {region.name!r} has only {n_region} mapped nodes"
            )
        edges = np.arange(N_BINS + 1, dtype=float) * bin_miles
        if part.owned_links.size:
            keep = mask[part.owned_links[:, 0]] & mask[part.owned_links[:, 1]]
            kept = part.owned_links[keep]
        else:
            kept = np.empty((0, 2), dtype=np.intp)
        lengths = (
            link_lengths_miles(
                part.full_lats, part.full_lons, kept[:, 0], kept[:, 1]
            )
            if kept.size
            else np.empty(0)
        )
        link_counts, _ = np.histogram(lengths, bins=edges)
        if n_region <= EXACT_PAIR_LIMIT:
            owned_pos = np.flatnonzero(part.owned_mask[region_rows])
            pair_counts = exact_pair_counts_rows(
                part.full_lats[region_rows],
                part.full_lons[region_rows],
                owned_pos,
                bin_miles,
                N_BINS,
            )
        elif part.owned_mask[region_rows[0]]:
            # The grid approximation does not decompose over row
            # ownership; the shard owning the region's first node
            # computes it whole and every peer contributes zeros.
            pair_counts = grid_pair_counts(
                part.full_lats[region_rows],
                part.full_lons[region_rows],
                region,
                bin_miles,
                N_BINS,
            )
        else:
            pair_counts = np.zeros(N_BINS, dtype=np.int64)
        return {
            "region": region.name,
            "n_nodes": n_region,
            "bin_miles": float(bin_miles),
            "link_counts": link_counts.astype(np.int64).tolist(),
            "pair_counts": pair_counts.astype(np.int64).tolist(),
        }

    # -- bookkeeping ---------------------------------------------------------

    @property
    def preferred_regions(self) -> tuple[Region, ...]:
        """Regions the distance-preference endpoint understands."""
        return STUDY_REGIONS

    def stats(self) -> dict:
        """JSON-ready index facts for ``/stats``."""
        facts = {
            "label": self.dataset.label,
            "kind": self.dataset.kind,
            "snapshot_hash": self.snapshot_hash,
            "gen": self.gen,
            "built_unix": round(self.built_unix, 3),
            "n_nodes": self.dataset.n_nodes,
            "n_links": self.dataset.n_links,
            "n_ases": self.n_ases,
            "n_grid_cells": len(self._cell_slices),
            "build_seconds": round(self.build_seconds, 6),
            "derived_loaded": self.derived_loaded,
            "preference_tables": sorted(
                name
                for name, value in self._pref_tables.items()
                if not isinstance(value, AnalysisError)
            ),
        }
        if self.partition is not None:
            facts["partition"] = {
                "addr_lo": self.partition.addr_lo,
                "addr_hi": self.partition.addr_hi,
                "n_owned": int(self.partition.owned_rows.size),
                "n_full_nodes": self.partition.n_full_nodes,
            }
        return facts


def _as_tables(
    dataset: MappedDataset,
    only: set[int] | None = None,
    as_degrees: dict[int, int] | None = None,
) -> tuple[dict[int, np.ndarray], dict[int, AsSummary]]:
    """Per-AS node lists and summaries for every mapped AS.

    ``only`` restricts the output to a subset of ASNs (a partition's
    owned ASes) without changing any individual summary — each AS's
    figures depend only on its own nodes and the AS graph, so the
    restricted results match the full run entry for entry.
    ``as_degrees`` supplies precomputed AS-graph degrees (they must
    equal :meth:`MappedDataset.as_degrees`, the default).
    """
    as_nodes: dict[int, np.ndarray] = {}
    as_summaries: dict[int, AsSummary] = {}
    if dataset.n_nodes == 0:
        return as_nodes, as_summaries
    if as_degrees is None:
        as_degrees = dataset.as_degrees()
    as_order = np.argsort(dataset.asns, kind="stable")
    sorted_asns = dataset.asns[as_order]
    a_uniq, a_starts = np.unique(sorted_asns, return_index=True)
    a_stops = np.append(a_starts[1:], sorted_asns.size)
    x, y = WORLD_ALBERS.project(dataset.lats, dataset.lons)
    for asn, lo, hi in zip(a_uniq, a_starts, a_stops):
        asn = int(asn)
        if asn == UNMAPPED_ASN or (only is not None and asn not in only):
            continue
        nodes = as_order[lo:hi]
        as_nodes[asn] = nodes
        as_summaries[asn] = _as_summary(
            dataset,
            asn,
            nodes,
            int(as_degrees.get(asn, 0)),
            x[nodes],
            y[nodes],
        )
    return as_nodes, as_summaries


def _as_summary(
    dataset: MappedDataset,
    asn: int,
    nodes: np.ndarray,
    degree: int,
    xs: np.ndarray,
    ys: np.ndarray,
) -> AsSummary:
    """One AS's summary from its node rows and projected coordinates.

    Shared between the from-scratch build and the incremental path —
    both feed it identical inputs (the projection is elementwise, so
    projecting only this AS's rows equals slicing a full projection),
    which is what makes incremental summaries bit-identical.
    """
    keys = np.unique(
        np.column_stack(
            [
                np.round(dataset.lats[nodes], 1),
                np.round(dataset.lons[nodes], 1),
            ]
        ),
        axis=0,
    )
    return AsSummary(
        asn=asn,
        n_nodes=int(nodes.size),
        n_locations=int(keys.shape[0]),
        degree=degree,
        centroid_lat=float(np.mean(dataset.lats[nodes])),
        centroid_lon=float(np.mean(dataset.lons[nodes])),
        hull_area_sq_miles=convex_hull_area(np.column_stack([xs, ys])),
    )


def _as_edge_table(dataset: MappedDataset) -> dict[tuple[int, int], int]:
    """Multiset of AS-graph edges: (low, high) ASN pair -> link count.

    The incremental-update bookkeeping: distinct keys are exactly
    :meth:`MappedDataset.as_graph_edges`, and the multiplicities let a
    delta apply know when removing one link dissolves an AS adjacency.
    """
    mult: dict[tuple[int, int], int] = {}
    if dataset.n_links == 0:
        return mult
    a = dataset.asns[dataset.links[:, 0]]
    b = dataset.asns[dataset.links[:, 1]]
    keep = (a != UNMAPPED_ASN) & (b != UNMAPPED_ASN) & (a != b)
    if not keep.any():
        return mult
    low = np.minimum(a[keep], b[keep])
    high = np.maximum(a[keep], b[keep])
    pairs, counts = np.unique(
        np.column_stack([low, high]), axis=0, return_counts=True
    )
    for (x, y), count in zip(pairs.tolist(), counts.tolist()):
        mult[(int(x), int(y))] = int(count)
    return mult


def _degrees_from_edges(
    mult: dict[tuple[int, int], int]
) -> dict[int, int]:
    """AS-graph degree per ASN from the edge multiset (distinct edges)."""
    degrees: dict[int, int] = {}
    for x, y in mult:
        degrees[x] = degrees.get(x, 0) + 1
        degrees[y] = degrees.get(y, 0) + 1
    return degrees


def _load_derived(
    path: Path,
    *,
    snapshot_hash: str,
    cell_arcmin: float,
    addr_lo: int | None,
    addr_hi: int | None,
    n_nodes: int,
) -> dict[str, np.ndarray] | None:
    """Derived tables from a sidecar, or None when unusable.

    Every identity field (format version, snapshot hash, cell size,
    owned address range, node count) must match and every array must
    have the expected shape; otherwise the caller rebuilds from scratch
    — a stale or corrupt sidecar can cost time, never correctness.
    """
    want_lo = -1 if addr_lo is None else int(addr_lo)
    want_hi = -1 if addr_hi is None else int(addr_hi)
    try:
        with np.load(path, allow_pickle=False) as data:
            if int(data["format_version"]) != _DERIVED_FORMAT_VERSION:
                return None
            if str(data["snapshot_hash"]) != snapshot_hash:
                return None
            if float(data["cell_arcmin"]) != float(cell_arcmin):
                return None
            bounds = data["bounds"]
            if int(bounds[0]) != want_lo or int(bounds[1]) != want_hi:
                return None
            if int(data["n_nodes"]) != n_nodes:
                return None
            tables = {
                "addr_order": data["addr_order"].astype(np.intp),
                "degrees": data["degrees"].astype(np.int64),
                "cells": data["cells"].astype(np.intp),
                "cell_order": data["cell_order"].astype(np.intp),
            }
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        return None
    for array in tables.values():
        if array.shape != (n_nodes,):
            return None
    if n_nodes and (
        tables["addr_order"].min() < 0
        or tables["addr_order"].max() >= n_nodes
        or tables["cell_order"].min() < 0
        or tables["cell_order"].max() >= n_nodes
    ):
        return None
    return tables


def check_point(lat: float, lon: float) -> tuple[float, float]:
    """Validate one query coordinate; shared with the coordinator so
    both serving paths reject bad input with identical messages.

    Raises:
        ServeError: when either component is non-finite or out of range.
    """
    lat, lon = float(lat), float(lon)
    if not (np.isfinite(lat) and -90.0 <= lat <= 90.0):
        raise ServeError(f"latitude out of range: {lat}")
    if not (np.isfinite(lon) and -180.0 <= lon <= 180.0):
        raise ServeError(f"longitude out of range: {lon}")
    return lat, lon


#: Backwards-compatible private alias.
_check_point = check_point
