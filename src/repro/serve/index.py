"""Indexed in-memory view of one snapshot, built once, queried many times.

A :class:`SnapshotIndex` loads a serialized :class:`MappedDataset` and
precomputes every lookup structure the query server needs so request
handling never touches O(n) scans:

- address -> node row via one sorted-array ``searchsorted`` (O(log n),
  vectorised for batches);
- node degree from the link table (one ``bincount`` at build);
- per-AS summaries (node/location counts, centroid, convex-hull extent,
  AS-graph degree) computed once for every mapped AS;
- a grid-bucketed spatial index (the paper's 75-arc-minute patches)
  backing nearest-node and radius queries by ring search;
- per-region distance-preference tables (Section V's ``f_hat(d)``),
  computed lazily on first request and memoised — pair counting is the
  one genuinely expensive build step, so cold start does not pay it.

The index is immutable after construction and safe for concurrent
readers; the only mutation is the memoised preference table behind a
lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.bgp.table import UNMAPPED_ASN
from repro.core.distance import (
    N_BINS,
    PAPER_BIN_MILES,
    DistancePreference,
    preference_function,
)
from repro.datasets.mapped import MappedDataset
from repro.errors import AnalysisError, ServeError
from repro.geo.distance import haversine_miles
from repro.geo.hull import convex_hull_area
from repro.geo.projection import WORLD_ALBERS
from repro.geo.regions import STUDY_REGIONS, Region, WORLD
from repro.obs.report import dataset_digest

#: Spatial-index cell edge in arc-minutes (the paper's patch size).
DEFAULT_CELL_ARCMIN = 75.0
#: Bin width for distance-preference tables of non-paper regions.
DEFAULT_BIN_MILES = 35.0
#: Miles per degree of latitude (conservative ring-search bound).
_MILES_PER_DEG = 69.0


@dataclass(frozen=True, slots=True)
class AsSummary:
    """Precomputed Section VI facts about one AS.

    Attributes:
        asn: the autonomous system number.
        n_nodes: nodes mapped to this AS.
        n_locations: distinct rounded locations among them.
        degree: degree in the observed AS graph.
        centroid_lat, centroid_lon: mean node position.
        hull_area_sq_miles: convex-hull extent (Albers projection).
    """

    asn: int
    n_nodes: int
    n_locations: int
    degree: int
    centroid_lat: float
    centroid_lon: float
    hull_area_sq_miles: float

    def to_dict(self) -> dict:
        """JSON-ready view."""
        return asdict(self)


class SnapshotIndex:
    """Read-optimised lookup structures over one mapped snapshot."""

    def __init__(
        self,
        dataset: MappedDataset,
        cell_arcmin: float = DEFAULT_CELL_ARCMIN,
    ) -> None:
        start = time.perf_counter()
        self.dataset = dataset
        self.snapshot_hash = dataset_digest(dataset)

        # Address -> row: one sort at build, binary search per lookup.
        self._addr_order = np.argsort(dataset.addresses, kind="stable")
        self._sorted_addresses = dataset.addresses[self._addr_order]

        # Node degree from the link table.
        self._degrees = np.zeros(dataset.n_nodes, dtype=np.int64)
        if dataset.n_links:
            np.add.at(self._degrees, dataset.links.ravel(), 1)

        # Spatial grid: every node bucketed into a 75' world patch.
        self._region = WORLD
        self._cell_deg = cell_arcmin / 60.0
        self._n_rows = max(1, int(np.ceil(self._region.lat_span / self._cell_deg)))
        self._n_cols = max(1, int(np.ceil(self._region.lon_span / self._cell_deg)))
        cells = self._cell_of(dataset.lats, dataset.lons)
        self._cell_order = np.argsort(cells, kind="stable")
        sorted_cells = cells[self._cell_order]
        uniq, starts = np.unique(sorted_cells, return_index=True)
        stops = np.append(starts[1:], sorted_cells.size)
        self._cell_slices: dict[int, tuple[int, int]] = {
            int(c): (int(a), int(b)) for c, a, b in zip(uniq, starts, stops)
        }

        # Per-AS summaries, all computed once.
        as_degrees = dataset.as_degrees()
        self._as_nodes: dict[int, np.ndarray] = {}
        self._as_summaries: dict[int, AsSummary] = {}
        if dataset.n_nodes:
            as_order = np.argsort(dataset.asns, kind="stable")
            sorted_asns = dataset.asns[as_order]
            a_uniq, a_starts = np.unique(sorted_asns, return_index=True)
            a_stops = np.append(a_starts[1:], sorted_asns.size)
            x, y = WORLD_ALBERS.project(dataset.lats, dataset.lons)
            for asn, lo, hi in zip(a_uniq, a_starts, a_stops):
                asn = int(asn)
                if asn == UNMAPPED_ASN:
                    continue
                nodes = as_order[lo:hi]
                self._as_nodes[asn] = nodes
                keys = np.unique(
                    np.column_stack(
                        [
                            np.round(dataset.lats[nodes], 1),
                            np.round(dataset.lons[nodes], 1),
                        ]
                    ),
                    axis=0,
                )
                self._as_summaries[asn] = AsSummary(
                    asn=asn,
                    n_nodes=int(nodes.size),
                    n_locations=int(keys.shape[0]),
                    degree=int(as_degrees.get(asn, 0)),
                    centroid_lat=float(np.mean(dataset.lats[nodes])),
                    centroid_lon=float(np.mean(dataset.lons[nodes])),
                    hull_area_sq_miles=convex_hull_area(
                        np.column_stack([x[nodes], y[nodes]])
                    ),
                )

        # Distance-preference tables: lazy, memoised per region.
        self._pref_lock = threading.Lock()
        self._pref_tables: dict[str, DistancePreference | AnalysisError] = {}

        self.build_seconds = time.perf_counter() - start

    # -- address lookups -----------------------------------------------------

    def row_of(self, address: int) -> int:
        """Node row of an address, or -1 when the snapshot lacks it."""
        pos = int(np.searchsorted(self._sorted_addresses, address))
        if (
            pos < self._sorted_addresses.size
            and self._sorted_addresses[pos] == address
        ):
            return int(self._addr_order[pos])
        return -1

    def rows_of(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`row_of`: one searchsorted for the whole batch."""
        addresses = np.asarray(addresses, dtype=np.int64)
        pos = np.searchsorted(self._sorted_addresses, addresses)
        pos = np.clip(pos, 0, max(self._sorted_addresses.size - 1, 0))
        if self._sorted_addresses.size == 0:
            return np.full(addresses.shape, -1, dtype=np.intp)
        found = self._sorted_addresses[pos] == addresses
        rows = np.where(found, self._addr_order[pos], -1)
        return rows.astype(np.intp)

    def node_record(self, row: int) -> dict:
        """JSON-ready facts about one node row."""
        ds = self.dataset
        asn = int(ds.asns[row])
        return {
            "address": int(ds.addresses[row]),
            "lat": float(ds.lats[row]),
            "lon": float(ds.lons[row]),
            "asn": None if asn == UNMAPPED_ASN else asn,
            "degree": int(self._degrees[row]),
        }

    def locate(self, address: int) -> dict | None:
        """Coordinates, origin AS, and degree of one address (or None)."""
        row = self.row_of(address)
        return None if row < 0 else self.node_record(row)

    def locate_many(self, addresses: list[int]) -> list[dict | None]:
        """Batch :meth:`locate` through the vectorised row lookup.

        The micro-batcher's flush path: one ``searchsorted`` resolves
        every address in the batch.
        """
        if not addresses:
            return []
        rows = self.rows_of(np.asarray(addresses, dtype=np.int64))
        return [
            None if row < 0 else self.node_record(int(row)) for row in rows
        ]

    # -- spatial queries -----------------------------------------------------

    def _cell_of(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Flat grid cell per point; out-of-box points clip to the edge."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        rows = np.clip(
            np.floor((lats - self._region.south) / self._cell_deg).astype(np.intp),
            0,
            self._n_rows - 1,
        )
        cols = np.clip(
            np.floor((lons - self._region.west) / self._cell_deg).astype(np.intp),
            0,
            self._n_cols - 1,
        )
        return rows * self._n_cols + cols

    def _cell_nodes(self, row: int, col: int) -> np.ndarray:
        """Node rows bucketed in grid cell (row, col); empty when none."""
        lo_hi = self._cell_slices.get(row * self._n_cols + col)
        if lo_hi is None:
            return np.empty(0, dtype=np.intp)
        lo, hi = lo_hi
        return self._cell_order[lo:hi]

    def _ring_nodes(self, row: int, col: int, ring: int) -> np.ndarray:
        """Node rows in all cells at Chebyshev distance ``ring``."""
        if ring == 0:
            return self._cell_nodes(row, col)
        parts: list[np.ndarray] = []
        lo_r, hi_r = row - ring, row + ring
        for c in range(col - ring, col + ring + 1):
            if 0 <= c < self._n_cols:
                if lo_r >= 0:
                    parts.append(self._cell_nodes(lo_r, c))
                if hi_r < self._n_rows:
                    parts.append(self._cell_nodes(hi_r, c))
        for r in range(row - ring + 1, row + ring):
            if 0 <= r < self._n_rows:
                if col - ring >= 0:
                    parts.append(self._cell_nodes(r, col - ring))
                if col + ring < self._n_cols:
                    parts.append(self._cell_nodes(r, col + ring))
        if not parts:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(parts)

    def nearest(self, lat: float, lon: float, k: int = 1) -> list[dict]:
        """The ``k`` nodes nearest a point, closest first.

        Ring search over the patch grid: rings expand until the best
        ``k`` exact distances cannot be beaten by any unexplored cell.

        Raises:
            ServeError: on an invalid coordinate or ``k``.
        """
        lat, lon = _check_point(lat, lon)
        if k < 1:
            raise ServeError(f"k must be >= 1, got {k}")
        if self.dataset.n_nodes == 0:
            return []
        query_cell = self._cell_of(np.array([lat]), np.array([lon]))[0]
        row, col = divmod(int(query_cell), self._n_cols)
        # Conservative miles-per-cell along the narrower (east-west) axis.
        cos_lat = max(0.05, float(np.cos(np.radians(min(abs(lat), 85.0)))))
        min_edge = self._cell_deg * _MILES_PER_DEG * cos_lat
        max_ring = max(self._n_rows, self._n_cols)
        cand_rows: list[np.ndarray] = []
        cand_dists: list[np.ndarray] = []
        n_found = 0
        for ring in range(max_ring + 1):
            if n_found >= k:
                kth = np.sort(np.concatenate(cand_dists))[k - 1]
                # Any point in an unexplored cell is >= (ring-1) cells out.
                if kth <= (ring - 1) * min_edge:
                    break
            nodes = self._ring_nodes(row, col, ring)
            if nodes.size:
                dists = np.asarray(
                    haversine_miles(
                        lat, lon, self.dataset.lats[nodes], self.dataset.lons[nodes]
                    )
                )
                cand_rows.append(nodes)
                cand_dists.append(dists)
                n_found += nodes.size
        all_rows = np.concatenate(cand_rows)
        all_dists = np.concatenate(cand_dists)
        order = np.argsort(all_dists, kind="stable")[:k]
        return [
            {**self.node_record(int(all_rows[i])), "miles": float(all_dists[i])}
            for i in order
        ]

    def within_radius(
        self, lat: float, lon: float, radius_miles: float, limit: int = 1000
    ) -> list[dict]:
        """All nodes within ``radius_miles`` of a point, closest first.

        Raises:
            ServeError: on an invalid coordinate or radius.
        """
        lat, lon = _check_point(lat, lon)
        if not np.isfinite(radius_miles) or radius_miles <= 0:
            raise ServeError(f"radius must be positive, got {radius_miles}")
        if self.dataset.n_nodes == 0:
            return []
        query_cell = self._cell_of(np.array([lat]), np.array([lon]))[0]
        row, col = divmod(int(query_cell), self._n_cols)
        radius_deg = radius_miles / _MILES_PER_DEG
        reach_lat = min(abs(lat) + radius_deg, 85.0)
        cos_lat = max(0.05, float(np.cos(np.radians(reach_lat))))
        d_rows = int(np.ceil(radius_deg / self._cell_deg)) + 1
        d_cols = int(np.ceil(radius_deg / (self._cell_deg * cos_lat))) + 1
        parts: list[np.ndarray] = []
        for r in range(max(0, row - d_rows), min(self._n_rows, row + d_rows + 1)):
            for c in range(max(0, col - d_cols), min(self._n_cols, col + d_cols + 1)):
                nodes = self._cell_nodes(r, c)
                if nodes.size:
                    parts.append(nodes)
        if not parts:
            return []
        nodes = np.concatenate(parts)
        dists = np.asarray(
            haversine_miles(
                lat, lon, self.dataset.lats[nodes], self.dataset.lons[nodes]
            )
        )
        keep = dists <= radius_miles
        nodes, dists = nodes[keep], dists[keep]
        order = np.argsort(dists, kind="stable")[:limit]
        return [
            {**self.node_record(int(nodes[i])), "miles": float(dists[i])}
            for i in order
        ]

    # -- AS summaries --------------------------------------------------------

    def as_summary(self, asn: int) -> AsSummary | None:
        """The precomputed summary of one AS (None when unknown)."""
        return self._as_summaries.get(asn)

    def as_nodes(self, asn: int) -> np.ndarray:
        """Node rows mapped to an AS (empty when unknown)."""
        return self._as_nodes.get(asn, np.empty(0, dtype=np.intp))

    @property
    def n_ases(self) -> int:
        """Number of mapped ASes in the snapshot."""
        return len(self._as_summaries)

    # -- distance preference -------------------------------------------------

    def distance_preference(self, region: Region) -> DistancePreference:
        """The memoised ``f_hat(d)`` table for a region.

        The first call per region pays the pair-counting cost; later
        calls (and :meth:`f_of_d`) are dictionary hits.

        Raises:
            AnalysisError: when the region holds too few nodes; the
                failure itself is memoised so retries stay cheap.
        """
        with self._pref_lock:
            cached = self._pref_tables.get(region.name)
        if cached is None:
            bin_miles = PAPER_BIN_MILES.get(region.name, DEFAULT_BIN_MILES)
            try:
                cached = preference_function(
                    self.dataset, region, bin_miles, n_bins=N_BINS
                )
            except AnalysisError as exc:
                cached = exc
            with self._pref_lock:
                cached = self._pref_tables.setdefault(region.name, cached)
        if isinstance(cached, AnalysisError):
            raise cached
        return cached

    def f_of_d(self, region: Region, d: float) -> float | None:
        """``f_hat`` at distance ``d`` (None outside the populated range).

        Raises:
            AnalysisError: when the region has no preference table.
            ServeError: on a negative distance.
        """
        if not np.isfinite(d) or d < 0:
            raise ServeError(f"distance must be >= 0, got {d}")
        pref = self.distance_preference(region)
        b = int(d // pref.bin_miles)
        if b >= pref.f_hat.size or pref.pair_counts[b] == 0:
            return None
        value = float(pref.f_hat[b])
        return value if np.isfinite(value) else None

    # -- bookkeeping ---------------------------------------------------------

    @property
    def preferred_regions(self) -> tuple[Region, ...]:
        """Regions the distance-preference endpoint understands."""
        return STUDY_REGIONS

    def stats(self) -> dict:
        """JSON-ready index facts for ``/stats``."""
        return {
            "label": self.dataset.label,
            "kind": self.dataset.kind,
            "snapshot_hash": self.snapshot_hash,
            "n_nodes": self.dataset.n_nodes,
            "n_links": self.dataset.n_links,
            "n_ases": self.n_ases,
            "n_grid_cells": len(self._cell_slices),
            "build_seconds": round(self.build_seconds, 6),
            "preference_tables": sorted(
                name
                for name, value in self._pref_tables.items()
                if not isinstance(value, AnalysisError)
            ),
        }


def _check_point(lat: float, lon: float) -> tuple[float, float]:
    lat, lon = float(lat), float(lon)
    if not (np.isfinite(lat) and -90.0 <= lat <= 90.0):
        raise ServeError(f"latitude out of range: {lat}")
    if not (np.isfinite(lon) and -180.0 <= lon <= 180.0):
        raise ServeError(f"longitude out of range: {lon}")
    return lat, lon
