"""Micro-batching of concurrent point lookups.

Every ``/locate`` cache miss lands here: request threads enqueue an
address and block on a future; one flusher thread drains the queue —
waiting up to a small window for concurrent requests to pile in — and
resolves the whole batch through a single vectorised
``SnapshotIndex.locate_many`` call.  Repeated addresses within one
flush are computed once (the batch is deduplicated before compute) and
every waiter for the same address receives that one result.

The pending queue is bounded: when it is full, :meth:`submit` raises
:class:`OverloadError` immediately rather than queueing without bound —
the server turns that into ``503 Retry-After`` (shed load, never
collapse).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Sequence

from repro.errors import OverloadError, ServeError


class MicroBatcher:
    """Coalesces concurrent single-key lookups into vectorised batches."""

    def __init__(
        self,
        compute: Callable[[Sequence[int]], list[Any]],
        *,
        max_batch: int = 512,
        max_wait_s: float = 0.002,
        max_pending: int = 4096,
    ) -> None:
        """Args:
        compute: batch function; receives **deduplicated** keys and
            must return one result per key, in order.
        max_batch: flush as soon as this many requests are pending.
        max_wait_s: flush at latest this long after the first request
            of a batch arrived (the latency cost of batching).
        max_pending: bound on queued requests; beyond it
            :meth:`submit` sheds with :class:`OverloadError`.
        """
        if max_batch < 1 or max_pending < 1 or max_wait_s < 0:
            raise ServeError("invalid micro-batcher configuration")
        self._compute = compute
        self._max_batch = max_batch
        self._max_wait_s = max_wait_s
        self._max_pending = max_pending
        self._pending: list[tuple[int, Future]] = []
        self._cond = threading.Condition()
        self._closed = False
        self.flushes = 0
        self.requests = 0
        self.computed_keys = 0
        self._worker = threading.Thread(
            target=self._run, name="serve-batcher", daemon=True
        )
        self._worker.start()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush."""
        with self._cond:
            return len(self._pending)

    def submit(self, key: int) -> "Future[Any]":
        """Enqueue one key; the future resolves at the next flush.

        Raises:
            OverloadError: when the pending queue is full.
            ServeError: when the batcher has been closed.
        """
        future: Future[Any] = Future()
        with self._cond:
            if self._closed:
                raise ServeError("micro-batcher is closed")
            if len(self._pending) >= self._max_pending:
                raise OverloadError(
                    f"lookup queue full ({self._max_pending} pending)"
                )
            self._pending.append((key, future))
            self.requests += 1
            self._cond.notify()
        return future

    def close(self) -> None:
        """Stop the flusher after draining whatever is queued."""
        with self._cond:
            self._closed = True
            self._cond.notify()
        self._worker.join(timeout=5.0)

    def stats(self) -> dict:
        """JSON-ready batching counters."""
        with self._cond:
            requests, flushes = self.requests, self.flushes
            computed, depth = self.computed_keys, len(self._pending)
        return {
            "requests": requests,
            "flushes": flushes,
            "computed_keys": computed,
            "dedup_saved": requests - computed - depth,
            "queue_depth": depth,
            "mean_batch": (requests / flushes) if flushes else 0.0,
        }

    # -- flusher loop --------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                # Batch window: give concurrent requests a moment to
                # coalesce, but never sit on a full batch.
                deadline = time.perf_counter() + self._max_wait_s
                while (
                    len(self._pending) < self._max_batch and not self._closed
                ):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        break
                batch, self._pending = self._pending, []
            self._flush(batch)

    def _flush(self, batch: list[tuple[int, Future]]) -> None:
        unique: list[int] = []
        position: dict[int, int] = {}
        for key, _ in batch:
            if key not in position:
                position[key] = len(unique)
                unique.append(key)
        try:
            results = self._compute(unique)
            if len(results) != len(unique):
                raise ServeError(
                    f"batch compute returned {len(results)} results "
                    f"for {len(unique)} keys"
                )
        except BaseException as exc:  # propagate to every waiter
            for _, future in batch:
                if future.set_running_or_notify_cancel():
                    future.set_exception(exc)
            return
        with self._cond:
            self.flushes += 1
            self.computed_keys += len(unique)
        for key, future in batch:
            if future.set_running_or_notify_cancel():
                future.set_result(results[position[key]])
