"""Command-line experiment driver.

``python -m repro.cli --scale small --experiments table1 table5`` runs
the pipeline once and prints the requested paper artefacts.  ``all``
(the default) prints every table and figure summary.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.config import default_scenario, small_scenario
from repro.core import experiments, report
from repro.datasets.pipeline import PipelineResult
from repro.errors import ReproError
from repro.runtime import Telemetry

_EXPERIMENT_NAMES = (
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figures7-10",
    "x1",
)


def _render(name: str, result: PipelineResult, mapper: str) -> str:
    if name == "table1":
        return report.render_table1(experiments.table1(result))
    if name == "table3":
        return report.render_table3(experiments.table3(result, mapper))
    if name == "table4":
        return report.render_table4(experiments.table4(result, mapper))
    if name == "table5":
        return report.render_table5(experiments.table5(result, mapper))
    if name == "table6":
        return report.render_table6(experiments.table6(result, mapper))
    if name == "figure2":
        return report.render_figure2(experiments.figure2(result, mapper))
    if name in ("figure4", "figure5", "figure6"):
        panels = experiments.figure4(result, mapper)
        if name == "figure4":
            return report.render_figure4(panels)
        if name == "figure5":
            return report.render_figure5(experiments.figure5(panels))
        return report.render_figure6(experiments.figure6(panels))
    if name == "figures7-10":
        return report.render_as_geography(
            experiments.figures7_to_10(result, mapper)
        )
    if name == "x1":
        return report.render_fractal(experiments.experiment_x1(result))
    raise ReproError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce tables and figures of Lakhina et al. (IMC 2002)",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "default"),
        default="small",
        help="scenario size (small: seconds; default: minutes)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override RNG seed")
    parser.add_argument(
        "--mapper",
        choices=("IxMapper", "EdgeScape"),
        default="IxMapper",
        help="geolocation tool to analyse (EdgeScape = appendix variants)",
    )
    parser.add_argument(
        "--experiments",
        nargs="+",
        default=["all"],
        help=f"which artefacts to print: all, or any of {', '.join(_EXPERIMENT_NAMES)}",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for independent pipeline stages (default 1; "
        "results are identical for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact-cache directory; warm runs skip unchanged stages",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage telemetry table to stderr",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.scale == "small":
        config = small_scenario() if args.seed is None else small_scenario(args.seed)
    else:
        config = (
            default_scenario() if args.seed is None else default_scenario(args.seed)
        )

    wanted = (
        list(_EXPERIMENT_NAMES)
        if "all" in args.experiments
        else args.experiments
    )
    unknown = [name for name in wanted if name not in _EXPERIMENT_NAMES]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    start = time.time()
    print(f"running pipeline (scale={args.scale}, seed={config.seed})...",
          file=sys.stderr)
    telemetry = Telemetry() if args.profile else None
    try:
        result = experiments.prepare_result(
            config,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            telemetry=telemetry,
        )
    except ReproError as exc:
        print(f"error: pipeline failed: {exc}", file=sys.stderr)
        return 1
    print(f"pipeline done in {time.time() - start:.1f}s", file=sys.stderr)
    if telemetry is not None:
        print(telemetry.render_profile(), file=sys.stderr)

    for name in wanted:
        try:
            print(_render(name, result, args.mapper))
        except ReproError as exc:
            print(f"[{name} unavailable at this scale: {exc}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
