"""Command-line experiment driver and query-service front end.

Subcommands:

- ``repro run`` (the default when no subcommand is given, so the
  original flag-only invocation keeps working): run the pipeline once
  and print the requested paper artefacts.  ``--report out.json``
  additionally captures the full observability bundle — stage events,
  span tree, metrics, artifact hashes — as a machine-readable
  :class:`~repro.obs.report.RunReport`.
- ``repro report``: ``show`` pretty-prints a saved report; ``diff``
  compares two reports and exits nonzero on stage wall-time regressions
  past ``--threshold`` or any counter/artifact drift.  ``diff`` also
  accepts two *sweep* reports (``repro sweep report --out``), where the
  threshold is a multiple of the bootstrap CI half-width instead.
- ``repro sweep``: fault-tolerant experiment campaigns.  ``run``
  executes a declarative spec grid on a process pool, persisting every
  trial into a SQLite result store; ``resume`` continues an interrupted
  campaign, skipping completed trials; ``status`` shows live progress
  from another terminal (``--follow`` tails worker heartbeats);
  ``trace`` prints the stitched cross-process span tree of a campaign;
  ``report`` aggregates per-cell bootstrap confidence intervals and
  the generator ranking.
- ``repro snapshot``: build one mapped dataset and export it
  (``json``/``npz``/CSV pair) for sharing or serving.
- ``repro serve``: load a snapshot (or build one in-process) and run
  the concurrent query server (:mod:`repro.serve`) until interrupted.
- ``repro query``: one-shot client call against a running server,
  e.g. ``repro query http://127.0.0.1:8765 locate address=1234``.
- ``repro bench``: ``history`` renders the benchmark trend table from
  the ``BENCH_*.json`` / ``BENCH_history.jsonl`` records the suite in
  ``benchmarks/`` writes, flagging direction-aware regressions.
- ``repro cluster``: sharded serving (:mod:`repro.cluster`).  ``serve``
  spawns N-range x R-replica shard workers behind a scatter-gather
  coordinator; ``shard`` is the worker entry point; ``status`` prints a
  running coordinator's replica health; ``reload`` hot-swaps the fleet
  onto a new snapshot with zero dropped requests.
- ``repro analytics``: continuous analytics (:mod:`repro.analytics`)
  over streaming-ingest generations.  ``run`` replays an ingest WAL
  offline into the generation-keyed metric store; ``status`` shows the
  latest analyzed generation and recorded drift alerts; ``history``
  prints one metric's per-generation series; ``diff`` compares two
  analyzed generations metric by metric.  ``repro ingest run
  --analytics`` maintains the same store live, incrementally, on every
  published generation.

``run``, ``serve``, and ``sweep run``/``resume`` all take
``--profile-sampling OUT.collapsed`` to run the stdlib sampling
profiler (:mod:`repro.obs.sampling`) for the duration and write a
collapsed-stack report — direct flamegraph input.

``python -m repro.cli run --scale small --experiments table1 table5``
runs the pipeline once and prints the requested artefacts; ``all`` (the
default) prints every table and figure summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import ExitStack, contextmanager
from pathlib import Path

from repro.config import default_scenario, large_scenario, small_scenario
from repro.core import experiments, report
from repro.datasets.pipeline import PipelineResult
from repro.errors import ReportError, ReproError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    TraceSampler,
    build_run_report,
    diff_reports,
    get_logger,
    load_report,
    render_diff,
    render_report,
    setup_logging,
    use_metrics,
    use_tracer,
    write_report,
)
from repro.obs import span as obs_span
from repro.obs.report import DEFAULT_MIN_WALL_S, DEFAULT_WALL_THRESHOLD
from repro.runtime import Telemetry
from repro.sweep.aggregate import (
    SWEEP_REPORT_SCHEMA,
    diff_sweep_reports,
    load_sweep_report,
)

_EXPERIMENT_NAMES = (
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figures7-10",
    "x1",
)

#: Exit codes of ``repro report diff`` and ``repro bench history --check``.
EXIT_OK = 0
EXIT_DIFF = 1
EXIT_INVALID = 2


def _profiling_args(parser: argparse.ArgumentParser) -> None:
    """``--profile-sampling``/``--sampling-hz``, shared by run/serve/sweep."""
    parser.add_argument(
        "--profile-sampling",
        default=None,
        metavar="OUT.collapsed",
        help="sample all thread stacks for the duration and write a "
        "collapsed-stack report (flamegraph input) to this path "
        "(bare filenames land under profiles/, not the working dir)",
    )
    parser.add_argument(
        "--sampling-hz",
        type=float,
        default=97.0,
        help="sampling frequency for --profile-sampling "
        "(default %(default)s Hz; prime, to dodge periodic work)",
    )


@contextmanager
def _sampling_profiler(args: argparse.Namespace):
    """Run the sampling profiler around a block when requested.

    The report is written even when the block raises (the profile of an
    interrupted serve loop is exactly what one wants to look at).
    """
    if getattr(args, "profile_sampling", None) is None:
        yield
        return
    from repro.obs import ProfilerError, SamplingProfiler

    destination = Path(args.profile_sampling)
    if destination.parent == Path("."):
        # A bare filename goes under profiles/ (gitignored) instead of
        # littering the working directory.
        destination = Path("profiles") / destination
    profiler = SamplingProfiler(hz=args.sampling_hz)
    profiler.start()
    try:
        yield
    finally:
        profiler.stop()
        try:
            path = profiler.write(destination)
        except ProfilerError as exc:
            print(f"error: {exc}", file=sys.stderr)
        else:
            print(
                f"sampling profile ({profiler.samples} samples at "
                f"{profiler.hz:g} Hz) written to {path}",
                file=sys.stderr,
            )


def _render(name: str, result: PipelineResult, mapper: str) -> str:
    if name == "table1":
        return report.render_table1(experiments.table1(result))
    if name == "table3":
        return report.render_table3(experiments.table3(result, mapper))
    if name == "table4":
        return report.render_table4(experiments.table4(result, mapper))
    if name == "table5":
        return report.render_table5(experiments.table5(result, mapper))
    if name == "table6":
        return report.render_table6(experiments.table6(result, mapper))
    if name == "figure2":
        return report.render_figure2(experiments.figure2(result, mapper))
    if name in ("figure4", "figure5", "figure6"):
        panels = experiments.figure4(result, mapper)
        if name == "figure4":
            return report.render_figure4(panels)
        if name == "figure5":
            return report.render_figure5(experiments.figure5(panels))
        return report.render_figure6(experiments.figure6(panels))
    if name == "figures7-10":
        return report.render_as_geography(
            experiments.figures7_to_10(result, mapper)
        )
    if name == "x1":
        return report.render_fractal(experiments.experiment_x1(result))
    raise ReproError(f"unknown experiment {name!r}")


def _run_main(argv: list[str]) -> int:
    """The ``repro run`` subcommand (also the bare-invocation default)."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Reproduce tables and figures of Lakhina et al. (IMC 2002)",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "default", "large"),
        default="small",
        help="scenario size (small: seconds; default: minutes; large: ~100k routers)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override RNG seed")
    parser.add_argument(
        "--mapper",
        choices=("IxMapper", "EdgeScape"),
        default="IxMapper",
        help="geolocation tool to analyse (EdgeScape = appendix variants)",
    )
    parser.add_argument(
        "--experiments",
        nargs="+",
        default=["all"],
        help=f"which artefacts to print: all, or any of {', '.join(_EXPERIMENT_NAMES)}",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for independent pipeline stages (default 1; "
        "results are identical for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact-cache directory; warm runs skip unchanged stages",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-stage telemetry table to stderr",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="OUT.json",
        help="write a structured run report (stage events, span tree, "
        "metrics, artifact hashes) to this path",
    )
    _profiling_args(parser)
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="emit structured JSON logs to stderr",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    setup_logging(args.verbose)
    log = get_logger("cli")

    factory = {
        "small": small_scenario,
        "default": default_scenario,
        "large": large_scenario,
    }[args.scale]
    config = factory() if args.seed is None else factory(args.seed)

    wanted = (
        list(_EXPERIMENT_NAMES)
        if "all" in args.experiments
        else args.experiments
    )
    unknown = [name for name in wanted if name not in _EXPERIMENT_NAMES]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    start = time.time()
    print(f"running pipeline (scale={args.scale}, seed={config.seed})...",
          file=sys.stderr)
    log.info(
        "run starting",
        extra={"scale": args.scale, "seed": config.seed, "jobs": args.jobs},
    )
    observing = args.report is not None
    telemetry = Telemetry() if (args.profile or observing) else None
    tracer = Tracer() if observing else None
    registry = MetricsRegistry() if observing else None
    outputs: list[tuple[str, str]] = []
    with ExitStack() as stack:
        stack.enter_context(_sampling_profiler(args))
        if observing:
            stack.enter_context(use_tracer(tracer))
            stack.enter_context(use_metrics(registry))
            stack.enter_context(
                obs_span(
                    "run",
                    scale=args.scale,
                    seed=config.seed,
                    mapper=args.mapper,
                    jobs=args.jobs,
                )
            )
        try:
            result = experiments.prepare_result(
                config,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                telemetry=telemetry,
            )
        except ReproError as exc:
            print(f"error: pipeline failed: {exc}", file=sys.stderr)
            return 1
        print(f"pipeline done in {time.time() - start:.1f}s", file=sys.stderr)
        for name in wanted:
            try:
                outputs.append((name, _render(name, result, args.mapper)))
            except ReproError as exc:
                outputs.append(
                    (name, f"[{name} unavailable at this scale: {exc}]")
                )
    if telemetry is not None and args.profile:
        print(telemetry.render_profile(), file=sys.stderr)
    if observing:
        run_report = build_run_report(
            config=config,
            result=result,
            telemetry=telemetry,
            tracer=tracer,
            metrics=registry,
            argv=["run", *argv],
        )
        try:
            write_report(run_report, args.report)
        except ReportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"run report written to {args.report}", file=sys.stderr)
        log.info("run report written", extra={"path": args.report})

    for _, text in outputs:
        print(text)
        print()
    return 0


def _report_main(argv: list[str]) -> int:
    """The ``repro report`` subcommand: show or diff saved run reports."""
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Inspect and compare structured run reports",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    show = commands.add_parser("show", help="pretty-print one run report")
    show.add_argument("path", help="report JSON file")
    diff = commands.add_parser(
        "diff",
        help="compare two run reports; exit 1 on wall-time regressions "
        "past the threshold or any counter/artifact drift",
    )
    diff.add_argument("old", help="baseline report JSON file")
    diff.add_argument("new", help="candidate report JSON file")
    diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression threshold: fractional stage slowdown for run "
        f"reports (default {DEFAULT_WALL_THRESHOLD}), or the multiple "
        "of the bootstrap CI half-width a metric mean may shift for "
        "sweep reports (default 1.0)",
    )
    diff.add_argument(
        "--min-wall-s",
        type=float,
        default=DEFAULT_MIN_WALL_S,
        help="run reports only: ignore slowdowns smaller than this many "
        "seconds (default %(default)ss)",
    )
    args = parser.parse_args(argv)
    try:
        if args.command == "show":
            print(render_report(load_report(args.path)))
            return EXIT_OK
        schemas = [_peek_schema(args.old), _peek_schema(args.new)]
        if SWEEP_REPORT_SCHEMA in schemas:
            if schemas[0] != schemas[1]:
                print(
                    "error: cannot diff a sweep report against a run report",
                    file=sys.stderr,
                )
                return EXIT_INVALID
            outcome = diff_sweep_reports(
                load_sweep_report(args.old),
                load_sweep_report(args.new),
                threshold=args.threshold if args.threshold is not None else 1.0,
            )
        else:
            outcome = diff_reports(
                load_report(args.old),
                load_report(args.new),
                wall_threshold=(
                    args.threshold
                    if args.threshold is not None
                    else DEFAULT_WALL_THRESHOLD
                ),
                min_wall_s=args.min_wall_s,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INVALID
    print(render_diff(outcome))
    return EXIT_OK if outcome.clean else EXIT_DIFF


def _peek_schema(path: str) -> str | None:
    """The ``schema`` field of a report file, without full validation."""
    import json as _json

    try:
        with open(path, encoding="utf-8") as handle:
            payload = _json.load(handle)
    except (OSError, ValueError):
        return None
    return payload.get("schema") if isinstance(payload, dict) else None


def _snapshot_common_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``snapshot`` and ``serve`` for in-process builds."""
    parser.add_argument(
        "--scale",
        choices=("small", "default", "large"),
        default="small",
        help="scenario size to build when no snapshot file is given",
    )
    parser.add_argument("--seed", type=int, default=None, help="override RNG seed")
    parser.add_argument(
        "--mapper",
        choices=("IxMapper", "EdgeScape"),
        default="IxMapper",
        help="geolocation tool of the exported dataset",
    )
    parser.add_argument(
        "--measurement",
        choices=("Skitter", "Mercator"),
        default="Skitter",
        help="measurement campaign of the exported dataset",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="pipeline worker threads"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact-cache directory for the pipeline build",
    )


def _build_dataset(args: argparse.Namespace):
    """Run the pipeline and pick the requested (mapper, measurement) row."""
    from repro.core.experiments import prepare_result

    factory = {
        "small": small_scenario,
        "default": default_scenario,
        "large": large_scenario,
    }[args.scale]
    config = factory() if args.seed is None else factory(args.seed)
    print(
        f"building snapshot (scale={args.scale}, seed={config.seed})...",
        file=sys.stderr,
    )
    result = prepare_result(config, jobs=args.jobs, cache_dir=args.cache_dir)
    return result.dataset(args.mapper, args.measurement)


def _snapshot_main(argv: list[str]) -> int:
    """The ``repro snapshot`` subcommand: build and export one dataset."""
    from repro.datasets.serialize import save_dataset
    from repro.obs.report import dataset_digest

    parser = argparse.ArgumentParser(
        prog="repro snapshot",
        description="Build one mapped dataset and export it to a file",
    )
    _snapshot_common_args(parser)
    parser.add_argument(
        "--out", required=True, metavar="PATH", help="output file or CSV directory"
    )
    parser.add_argument(
        "--format",
        choices=("auto", "json", "npz", "csv"),
        default="auto",
        help="serialisation format (auto: by extension)",
    )
    args = parser.parse_args(argv)
    try:
        dataset = _build_dataset(args)
        save_dataset(dataset, args.out, format=args.format)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"wrote {dataset.label!r} ({dataset.n_nodes} nodes, "
        f"{dataset.n_links} links) to {args.out} "
        f"[{dataset_digest(dataset)[:12]}]",
        file=sys.stderr,
    )
    return 0


def _serve_main(argv: list[str]) -> int:
    """The ``repro serve`` subcommand: run the snapshot query server."""
    from repro.datasets.serialize import load_dataset
    from repro.serve import SnapshotIndex, SnapshotServer

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve geo/AS queries over one snapshot "
        "(see README 'Serving' for endpoints)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="snapshot file (json/npz) or CSV directory; "
        "omit to build one in-process",
    )
    parser.add_argument(
        "--format",
        choices=("auto", "json", "npz", "csv"),
        default="auto",
        help="snapshot format (auto: by extension)",
    )
    _snapshot_common_args(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8765, help="bind port (0 picks a free one)"
    )
    parser.add_argument(
        "--cache-size", type=int, default=8192, help="response-cache entries"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="concurrent requests before shedding with 503",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="bounded locate-queue depth before shedding",
    )
    parser.add_argument(
        "--max-batch", type=int, default=512, help="micro-batch flush size"
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch coalescing window (latency cost of batching)",
    )
    parser.add_argument(
        "--sidecar",
        default=None,
        metavar="PATH",
        help="derived-table sidecar .npz: reused when it matches the "
        "snapshot, (re)written after a fresh build",
    )
    parser.add_argument(
        "--stats-report",
        default=None,
        metavar="OUT.json",
        help="write a RunReport-compatible stats snapshot on shutdown",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        metavar="OUT.jsonl",
        help="append per-request access events (endpoint, status, "
        "latency, trace id) as JSON lines to this file",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="fraction of requests that get a trace id in the access "
        "log (default %(default)s; 0 disables tracing entirely)",
    )
    _profiling_args(parser)
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="structured JSON logs"
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.trace_sample <= 1.0:
        parser.error("--trace-sample must be in [0, 1]")

    setup_logging(args.verbose)
    log = get_logger("serve")
    try:
        if args.snapshot is not None:
            dataset = load_dataset(args.snapshot, format=args.format)
        else:
            dataset = _build_dataset(args)
        index = SnapshotIndex(dataset, derived=args.sidecar)
        if args.sidecar is not None and not index.derived_loaded:
            index.save_derived(args.sidecar)
        bus = None
        if args.access_log is not None:
            from repro.obs import JsonlSink, TelemetryBus

            bus = TelemetryBus()
            bus.add_sink(JsonlSink(args.access_log))
        tracer = Tracer() if args.trace_sample > 0.0 else None
        sampler = (
            TraceSampler(args.trace_sample)
            if 0.0 < args.trace_sample < 1.0
            else None
        )
        server = SnapshotServer(
            index,
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            max_inflight=args.max_inflight,
            max_pending=args.max_pending,
            max_batch=args.max_batch,
            batch_window_s=args.batch_window_ms / 1e3,
            tracer=tracer,
            bus=bus,
            trace_sampler=sampler,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    server.start()
    # Parsed by scripts/serve_smoke.py — keep the line format stable.
    print(f"serving {dataset.label!r} on {server.url}", flush=True)
    log.info(
        "server started",
        extra={"url": server.url, "snapshot_hash": index.snapshot_hash},
    )
    try:
        with _sampling_profiler(args):
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        stats = server.stats()
        print(
            f"served {sum(v for k, v in stats['metrics']['counters'].items() if k.startswith('serve.requests.'))} "
            f"requests, cache hit ratio {stats['cache']['hit_ratio']:.2f}",
            file=sys.stderr,
        )
        if args.stats_report is not None:
            try:
                write_report(server.stats_report(), args.stats_report)
                print(
                    f"stats report written to {args.stats_report}",
                    file=sys.stderr,
                )
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
    return 0


def _query_main(argv: list[str]) -> int:
    """The ``repro query`` subcommand: one-shot client calls."""
    import json as _json

    from repro.serve import SnapshotClient
    from repro.serve.client import QueryError

    parser = argparse.ArgumentParser(
        prog="repro query",
        description="Query a running snapshot server once and print the JSON",
    )
    parser.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8765")
    parser.add_argument(
        "endpoint",
        help="endpoint path, e.g. healthz, stats, locate, as/64512, near",
    )
    parser.add_argument(
        "params",
        nargs="*",
        metavar="key=value",
        help="query parameters, e.g. address=1234 lat=40 lon=-100 k=3",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="request timeout seconds"
    )
    args = parser.parse_args(argv)
    params: dict[str, str] = {}
    for pair in args.params:
        key, sep, value = pair.partition("=")
        if not sep:
            parser.error(f"parameters must be key=value, got {pair!r}")
        params[key] = value
    client = SnapshotClient(args.url, timeout_s=args.timeout)
    try:
        payload = client.get(args.endpoint, **params)
    except QueryError as exc:
        print(_json.dumps(exc.payload, indent=2))
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(payload, indent=2))
    return 0


def _cluster_main(argv: list[str]) -> int:
    """The ``repro cluster`` subcommand family."""
    verbs = {
        "serve": _cluster_serve_main,
        "shard": _cluster_shard_main,
        "status": _cluster_status_main,
        "reload": _cluster_reload_main,
    }
    if not argv or argv[0] not in verbs:
        print(
            "usage: repro cluster {serve,shard,status,reload} ...",
            file=sys.stderr,
        )
        return 2
    return verbs[argv[0]](argv[1:])


def _cluster_serve_main(argv: list[str]) -> int:
    """Spawn a shard fleet and run the coordinator in front of it."""
    from repro.cluster import ClusterCoordinator, ShardManager, build_routing

    parser = argparse.ArgumentParser(
        prog="repro cluster serve",
        description="Serve one snapshot from a sharded fleet: N address "
        "ranges x R replicas behind a scatter-gather coordinator",
    )
    parser.add_argument(
        "--snapshot", required=True, metavar="PATH", help="snapshot file"
    )
    parser.add_argument(
        "--ranges", type=int, default=2, help="shard ranges (default 2)"
    )
    parser.add_argument(
        "--replicas", type=int, default=2, help="replicas per range (default 2)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8770, help="coordinator port (0 = any)"
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=5.0,
        help="per-shard request timeout seconds",
    )
    parser.add_argument(
        "--hedge-delay-ms",
        type=float,
        default=50.0,
        help="delay before hedging a slow shard request to a replica",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=0.5,
        help="replica health-probe interval seconds",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        metavar="OUT.jsonl",
        help="append coordinator access events as JSON lines",
    )
    parser.add_argument(
        "--sidecar-dir",
        default=None,
        metavar="DIR",
        help="cache shard derived tables (sidecar .npz) in this directory",
    )
    parser.add_argument(
        "--analytics-db",
        default=None,
        metavar="PATH",
        help="serve /analytics/latest and /analytics/history from this "
        "metric store (written by 'repro ingest run --analytics')",
    )
    parser.add_argument(
        "--analytics-campaign",
        default="ingest",
        metavar="NAME",
        help="campaign to serve from the metric store (default %(default)s)",
    )
    args = parser.parse_args(argv)

    bus = None
    if args.access_log is not None:
        from repro.obs import JsonlSink, TelemetryBus

        bus = TelemetryBus()
        bus.add_sink(JsonlSink(args.access_log))
    manager = ShardManager(
        args.snapshot,
        n_ranges=args.ranges,
        replicas=args.replicas,
        host=args.host,
        sidecar_dir=args.sidecar_dir,
    )
    try:
        urls_by_slot = manager.start()
        # Parsed by scripts/cluster_smoke.py — keep these formats stable.
        for shard in manager.shards:
            print(
                f"shard slot={shard.slot} replica={shard.replica} "
                f"pid={shard.pid} range={shard.range.label()} "
                f"on {shard.url}",
                flush=True,
            )
        routing = build_routing(manager.ranges, urls_by_slot)
        coordinator = ClusterCoordinator(
            routing,
            host=args.host,
            port=args.port,
            shard_timeout_s=args.shard_timeout,
            hedge_delay_s=args.hedge_delay_ms / 1e3,
            health_interval_s=args.health_interval,
            bus=bus,
            analytics_db=args.analytics_db,
            analytics_campaign=args.analytics_campaign,
        )
    except ReproError as exc:
        manager.stop_all()
        print(f"error: {exc}", file=sys.stderr)
        return 1
    coordinator.start()
    print(
        f"cluster coordinator on {coordinator.url} "
        f"({args.ranges} ranges x {args.replicas} replicas, "
        f"snapshot {routing.snapshot_hash[:12]})",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
        manager.stop_all()
    return 0


def _cluster_shard_main(argv: list[str]) -> int:
    """One shard worker process (spawned by ``cluster serve``)."""
    import os

    from repro.cluster import ShardRange, ShardServer

    parser = argparse.ArgumentParser(
        prog="repro cluster shard",
        description="Serve one address range of a snapshot "
        "(internal: spawned by `repro cluster serve`)",
    )
    parser.add_argument("--snapshot", required=True, metavar="PATH")
    parser.add_argument("--lo", type=int, default=None, help="range lower bound")
    parser.add_argument(
        "--hi", type=int, default=None, help="range upper bound (exclusive)"
    )
    parser.add_argument("--gen", type=int, default=1, help="initial generation")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--sidecar-dir",
        default=None,
        metavar="DIR",
        help="cache derived tables (sidecar .npz) in this directory",
    )
    args = parser.parse_args(argv)
    try:
        server = ShardServer(
            args.snapshot,
            args.lo,
            args.hi,
            gen=args.gen,
            host=args.host,
            port=args.port,
            sidecar_dir=args.sidecar_dir,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    server.start()
    rng = ShardRange(args.lo, args.hi)
    # Parsed by ShardManager (BANNER_RE) — keep the format stable.
    print(
        f"shard pid={os.getpid()} gen={args.gen} range={rng.label()} "
        f"on {server.url}",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cluster_status_main(argv: list[str]) -> int:
    """Pretty-print a running coordinator's ``/stats``."""
    import json as _json

    from repro.serve import SnapshotClient

    parser = argparse.ArgumentParser(prog="repro cluster status")
    parser.add_argument("url", help="coordinator base URL")
    parser.add_argument("--timeout", type=float, default=10.0)
    args = parser.parse_args(argv)
    client = SnapshotClient(args.url, timeout_s=args.timeout)
    try:
        stats = client.stats()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    cluster = stats.get("cluster", {})
    print(
        f"gen {cluster.get('gen')} snapshot "
        f"{str(cluster.get('snapshot_hash'))[:12]}"
    )
    for slot in cluster.get("ranges", []):
        print(f"range {slot['range']}: {slot['n_healthy']} healthy")
        for replica in slot["replicas"]:
            state = "up" if replica["healthy"] else "DOWN"
            print(
                f"  {replica['url']} {state} "
                f"ewma {replica['ewma_latency_ms']}ms "
                f"({replica['requests']} requests)"
            )
    print(_json.dumps({"cache": stats.get("cache")}, indent=2))
    return 0


def _cluster_reload_main(argv: list[str]) -> int:
    """Hot-swap a running cluster onto a new snapshot."""
    import json as _json
    from pathlib import Path

    from repro.serve import SnapshotClient

    parser = argparse.ArgumentParser(prog="repro cluster reload")
    parser.add_argument("url", help="coordinator base URL")
    parser.add_argument("snapshot", help="new snapshot file")
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="staging can take a while on big snapshots",
    )
    args = parser.parse_args(argv)
    client = SnapshotClient(args.url, timeout_s=args.timeout)
    try:
        result = client.get(
            "admin/reload", snapshot=str(Path(args.snapshot).resolve())
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(result, indent=2))
    return 0


def _ingest_main(argv: list[str]) -> int:
    """The ``repro ingest`` subcommand family."""
    verbs = {
        "run": _ingest_run_main,
        "status": _ingest_status_main,
        "replay": _ingest_replay_main,
    }
    if not argv or argv[0] not in verbs:
        print("usage: repro ingest {run,status,replay} ...", file=sys.stderr)
        return 2
    return verbs[argv[0]](argv[1:])


def _ingest_run_main(argv: list[str]) -> int:
    """Run the streaming ingester against a base snapshot."""
    import os
    from pathlib import Path

    import numpy as np

    from repro.datasets.serialize import load_dataset
    from repro.ingest import Ingester, IngestHttpServer, load_delta
    from repro.measure.stream import DeltaStream
    from repro.obs.metrics import MetricsRegistry, use_metrics

    parser = argparse.ArgumentParser(
        prog="repro ingest run",
        description="Journal measurement deltas to a WAL, apply them "
        "incrementally, and publish fresh snapshot generations "
        "(see README 'Streaming ingestion')",
    )
    parser.add_argument(
        "--base", required=True, metavar="PATH", help="base snapshot file"
    )
    parser.add_argument(
        "--out", required=True, metavar="DIR",
        help="ingest state directory (WAL, checkpoint, generations)",
    )
    parser.add_argument(
        "--spool", default=None, metavar="DIR",
        help="poll this directory for delta .npz files "
        "(journaled then removed); omit for synthetic deltas",
    )
    parser.add_argument(
        "--coordinator", default=None, metavar="URL",
        help="cluster coordinator to hot-reload on every publish",
    )
    parser.add_argument(
        "--publish-batches", type=int, default=3,
        help="publish after this many pending batches (default %(default)s)",
    )
    parser.add_argument(
        "--publish-age-s", type=float, default=10.0,
        help="publish when the oldest pending batch is this old",
    )
    parser.add_argument(
        "--batches", type=int, default=0, metavar="N",
        help="synthesize N delta batches, publish, and exit "
        "(0 = run forever on the spool)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="synthetic-stream RNG seed"
    )
    parser.add_argument(
        "--interval-s", type=float, default=0.2,
        help="spool poll / synthetic emit interval seconds",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="expose /metrics, /healthz, /status on this port (0 = any)",
    )
    parser.add_argument(
        "--no-sync", action="store_true",
        help="skip fsync per WAL append (faster, loses the "
        "acknowledged-write crash guarantee)",
    )
    parser.add_argument(
        "--analytics", action="store_true",
        help="maintain per-generation paper metrics incrementally and "
        "store them in the analytics database on every publish",
    )
    parser.add_argument(
        "--analytics-db", default=None, metavar="PATH",
        help="metric store path (default: <out>/analytics.db)",
    )
    parser.add_argument(
        "--analytics-campaign", default="ingest", metavar="NAME",
        help="campaign name in the metric store (default %(default)s)",
    )
    parser.add_argument(
        "--drift-metrics", default=None, metavar="A,B",
        help="comma-separated metrics to watch for drift (default: all)",
    )
    parser.add_argument(
        "--drift-warmup", type=int, default=4,
        help="generations consumed before drift scoring (default %(default)s)",
    )
    parser.add_argument(
        "--drift-h", type=float, default=6.0,
        help="CUSUM alert threshold (default %(default)s)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="structured JSON logs"
    )
    args = parser.parse_args(argv)
    if args.spool is None and args.batches <= 0:
        parser.error("either --spool DIR or --batches N is required")

    setup_logging(args.verbose)
    log = get_logger("ingest")
    registry = MetricsRegistry()
    http_server = None
    with use_metrics(registry):
        try:
            ingester = Ingester(
                args.base,
                args.out,
                publish_batches=args.publish_batches,
                publish_age_s=args.publish_age_s,
                coordinator_url=args.coordinator,
                sync=not args.no_sync,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.analytics or args.analytics_db is not None:
            from repro.analytics import (
                DEFAULT_DB_NAME,
                AnalyticsRunner,
                DriftConfig,
            )

            db = (
                Path(args.out) / DEFAULT_DB_NAME
                if args.analytics_db is None
                else Path(args.analytics_db)
            )
            watch = (
                None
                if args.drift_metrics is None
                else [m for m in args.drift_metrics.split(",") if m]
            )
            runner = AnalyticsRunner(
                db,
                args.analytics_campaign,
                drift_config=DriftConfig(
                    warmup=args.drift_warmup, threshold=args.drift_h
                ),
                drift_metrics=watch,
            )
            runner.attach(ingester)
            print(f"ingest analytics db={db}", flush=True)
        status = ingester.status()
        # Parsed by scripts/ingest_smoke.py — keep the formats stable.
        print(
            f"ingest pid={os.getpid()} wal_seq={status['applied_seq']} "
            f"gen={status['gen']} hash={status['snapshot_hash'][:12]} "
            f"out={args.out}",
            flush=True,
        )
        if args.metrics_port is not None:
            http_server = IngestHttpServer(
                ingester, "127.0.0.1", args.metrics_port
            )
            print(
                f"ingest metrics on http://127.0.0.1:{http_server.port}",
                flush=True,
            )
        if ingester.replayed_batches:
            log.info(
                "resumed from WAL",
                extra={"replayed": ingester.replayed_batches},
            )
            ingester.maybe_publish(force=True)

        stream = None
        if args.spool is None:
            stream = DeltaStream(
                ingester.index.dataset, np.random.default_rng(args.seed)
            )
        spool = None if args.spool is None else Path(args.spool)
        if spool is not None:
            spool.mkdir(parents=True, exist_ok=True)
        last_published = ingester.published_seq
        remaining = args.batches
        exit_code = 0
        try:
            while True:
                if spool is not None:
                    for path in sorted(spool.glob("*.npz")):
                        try:
                            result = ingester.submit(load_delta(path))
                        except ReproError as exc:
                            bad = path.with_suffix(".bad")
                            path.rename(bad)
                            log.warning(
                                "rejected delta",
                                extra={"file": str(bad), "error": str(exc)},
                            )
                            print(
                                f"error: rejected {path.name}: {exc}",
                                file=sys.stderr,
                            )
                            continue
                        path.unlink(missing_ok=True)
                        log.info("ingested", extra=result)
                elif remaining > 0:
                    ingester.submit(stream.next_batch())
                    remaining -= 1
                ingester.maybe_publish(force=spool is None and remaining == 0)
                if ingester.published_seq != last_published:
                    last_published = ingester.published_seq
                    st = ingester.status()
                    print(
                        f"ingest published seq={st['published_seq']} "
                        f"gen={st['gen']} hash={st['snapshot_hash'][:12]}",
                        flush=True,
                    )
                if spool is None and remaining == 0:
                    break
                time.sleep(args.interval_s)
        except KeyboardInterrupt:
            ingester.maybe_publish(force=True)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            exit_code = 1
        finally:
            if http_server is not None:
                http_server.close()
            ingester.close()
            st = ingester.status()
            print(
                f"ingested {st['applied_seq']} batches, "
                f"published seq {st['published_seq']}, "
                f"gen {st['gen']}",
                file=sys.stderr,
            )
        return exit_code


def _ingest_status_main(argv: list[str]) -> int:
    """Print WAL and checkpoint facts for an ingest directory."""
    import json as _json
    from pathlib import Path

    from repro.ingest import WriteAheadLog

    parser = argparse.ArgumentParser(prog="repro ingest status")
    parser.add_argument(
        "--out", required=True, metavar="DIR", help="ingest state directory"
    )
    parser.add_argument(
        "--analytics-db", default=None, metavar="PATH",
        help="metric store to report lag against "
        "(default: <out>/analytics.db when present)",
    )
    parser.add_argument(
        "--analytics-campaign", default="ingest", metavar="NAME",
        help="campaign in the metric store (default %(default)s)",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    wal_path = out / "ingest.wal"
    if not wal_path.exists():
        print(f"error: no WAL at {wal_path}", file=sys.stderr)
        return 1
    try:
        with WriteAheadLog(wal_path, sync=False) as wal:
            facts: dict = {"wal": wal.stats()}
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    checkpoint = out / "checkpoint.json"
    if checkpoint.exists():
        facts["checkpoint"] = _json.loads(checkpoint.read_text())
    facts["generations"] = sorted(p.name for p in out.glob("gen-*.npz"))
    # Analytics lag: how far the metric series trails the live state.
    # The WAL's last seq is the applied generation minus the base gen,
    # so current_gen = checkpoint gen + unpublished suffix when a
    # checkpoint exists, else 1 + last_seq over a fresh base.
    from repro.analytics import DEFAULT_DB_NAME, analytics_lag

    db = (
        out / DEFAULT_DB_NAME
        if args.analytics_db is None
        else Path(args.analytics_db)
    )
    current_gen = 1 + facts["wal"]["last_seq"]
    if "checkpoint" in facts:
        checkpointed = facts["checkpoint"]
        current_gen = int(checkpointed["gen"]) + (
            facts["wal"]["last_seq"] - int(checkpointed["seq"])
        )
    analytics = analytics_lag(db, args.analytics_campaign, current_gen)
    if analytics is not None:
        facts["analytics"] = analytics
    print(_json.dumps(facts, indent=2))
    return EXIT_OK


def _ingest_replay_main(argv: list[str]) -> int:
    """Rebuild the final snapshot offline by replaying a WAL."""
    from repro.datasets.serialize import load_dataset, save_dataset
    from repro.ingest import WriteAheadLog, patch_dataset
    from repro.obs.report import dataset_digest

    parser = argparse.ArgumentParser(
        prog="repro ingest replay",
        description="Apply every journaled delta to a base snapshot and "
        "print the resulting content hash (offline audit)",
    )
    parser.add_argument("--base", required=True, metavar="PATH")
    parser.add_argument("--wal", required=True, metavar="PATH")
    parser.add_argument(
        "--after-seq", type=int, default=0,
        help="replay only records with seq > this (default 0: all)",
    )
    parser.add_argument(
        "--out", default=None, metavar="OUT.npz",
        help="also write the replayed snapshot here",
    )
    args = parser.parse_args(argv)
    try:
        dataset = load_dataset(args.base)
        n_batches = 0
        with WriteAheadLog(args.wal, sync=False) as wal:
            for _seq, batch in wal.replay_deltas(args.after_seq):
                dataset, _info = patch_dataset(dataset, batch)
                n_batches += 1
        if args.out is not None:
            save_dataset(dataset, args.out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"replayed {n_batches} batches: {dataset.n_nodes} nodes, "
        f"{dataset.n_links} links, hash {dataset_digest(dataset)}"
    )
    return EXIT_OK


def _analytics_main(argv: list[str]) -> int:
    """The ``repro analytics`` subcommand family."""
    verbs = {
        "run": _analytics_run_main,
        "status": _analytics_status_main,
        "history": _analytics_history_main,
        "diff": _analytics_diff_main,
    }
    if not argv or argv[0] not in verbs:
        print(
            "usage: repro analytics {run,status,history,diff} ...",
            file=sys.stderr,
        )
        return 2
    return verbs[argv[0]](argv[1:])


def _analytics_db_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", required=True, metavar="PATH",
        help="analytics metric store (e.g. <ingest-out>/analytics.db)",
    )
    parser.add_argument(
        "--campaign", default="ingest", metavar="NAME",
        help="campaign in the store (default %(default)s)",
    )


def _analytics_open(args: argparse.Namespace):
    """(store, campaign_id) for read verbs; raises ReproError on miss."""
    from repro.analytics import MetricStore
    from repro.errors import AnalyticsError

    store = MetricStore(args.db)
    campaign_id = store.campaign_id(args.campaign)
    if campaign_id is None:
        raise AnalyticsError(
            f"campaign {args.campaign!r} not found in {args.db} "
            f"(have: {', '.join(store.campaigns()) or 'none'})"
        )
    return store, campaign_id


def _analytics_run_main(argv: list[str]) -> int:
    """Offline analytics: replay a WAL over a base snapshot."""
    import json as _json

    from repro.analytics import DriftConfig, replay_wal

    parser = argparse.ArgumentParser(
        prog="repro analytics run",
        description="Analyze every generation of base snapshot + ingest "
        "WAL into the metric store (idempotent: re-runs add nothing)",
    )
    parser.add_argument("--base", required=True, metavar="PATH")
    parser.add_argument("--wal", required=True, metavar="PATH")
    _analytics_db_args(parser)
    parser.add_argument(
        "--drift-metrics", default=None, metavar="A,B",
        help="comma-separated metrics to watch for drift (default: all)",
    )
    parser.add_argument("--drift-warmup", type=int, default=4)
    parser.add_argument("--drift-h", type=float, default=6.0)
    args = parser.parse_args(argv)
    watch = (
        None
        if args.drift_metrics is None
        else [m for m in args.drift_metrics.split(",") if m]
    )
    try:
        summary = replay_wal(
            args.base,
            args.wal,
            args.db,
            args.campaign,
            drift_config=DriftConfig(
                warmup=args.drift_warmup, threshold=args.drift_h
            ),
            drift_metrics=watch,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(summary, indent=2))
    return EXIT_OK


def _analytics_status_main(argv: list[str]) -> int:
    """Latest analyzed generation, its metrics, and recorded alerts."""
    import json as _json

    parser = argparse.ArgumentParser(prog="repro analytics status")
    _analytics_db_args(parser)
    args = parser.parse_args(argv)
    try:
        store, campaign_id = _analytics_open(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    gens = store.generations(campaign_id)
    latest = store.latest(campaign_id)
    alerts = store.alerts(campaign_id, limit=50)
    print(
        _json.dumps(
            {
                "campaign": args.campaign,
                "generations": len(gens),
                "first_gen": gens[0] if gens else None,
                "latest": latest,
                "alerts": alerts,
                "triggers": sum(
                    1 for a in alerts if a["kind"] == "trigger"
                ),
            },
            indent=2,
        )
    )
    return EXIT_OK


def _analytics_history_main(argv: list[str]) -> int:
    """One metric's per-generation series as a small table."""
    parser = argparse.ArgumentParser(prog="repro analytics history")
    _analytics_db_args(parser)
    parser.add_argument(
        "--metric", required=True, metavar="NAME",
        help="metric name (see 'repro analytics status' for the list)",
    )
    parser.add_argument("--limit", type=int, default=50)
    args = parser.parse_args(argv)
    try:
        store, campaign_id = _analytics_open(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    points = store.history(campaign_id, args.metric, limit=args.limit)
    if not points:
        names = ", ".join(store.metric_names(campaign_id)[:20])
        print(
            f"error: no values for {args.metric!r} (have: {names})",
            file=sys.stderr,
        )
        return 1
    print(f"{'gen':>6}  {args.metric}")
    previous = None
    for gen, value in points:
        delta = "" if previous is None else f"  ({value - previous:+.6g})"
        print(f"{gen:>6}  {value:.6g}{delta}")
        previous = value
    return EXIT_OK


def _analytics_diff_main(argv: list[str]) -> int:
    """Compare two stored generations metric by metric."""
    parser = argparse.ArgumentParser(
        prog="repro analytics diff",
        description="Per-metric change between two analyzed generations "
        "(defaults to the two newest)",
    )
    _analytics_db_args(parser)
    parser.add_argument(
        "gens", nargs="*", type=int, metavar="GEN",
        help="two generation numbers (default: the two newest)",
    )
    parser.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="exit nonzero when any metric changed by more than this "
        "relative fraction",
    )
    args = parser.parse_args(argv)
    try:
        store, campaign_id = _analytics_open(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    gens = args.gens
    if not gens:
        stored = store.generations(campaign_id)
        if len(stored) < 2:
            print("error: need two analyzed generations", file=sys.stderr)
            return 1
        gens = stored[-2:]
    if len(gens) != 2:
        print("error: give exactly two generations", file=sys.stderr)
        return EXIT_INVALID
    records = []
    for gen in gens:
        record = store.generation(campaign_id, int(gen))
        if record is None:
            print(f"error: generation {gen} not analyzed", file=sys.stderr)
            return 1
        records.append(record)
    old, new = records
    print(
        f"{args.campaign}: gen {old['gen']} -> {new['gen']} "
        f"({new['n_nodes'] - old['n_nodes']:+d} nodes, "
        f"{new['n_links'] - old['n_links']:+d} links)"
    )
    drifted = 0
    for name in sorted(set(old["metrics"]) | set(new["metrics"])):
        a = old["metrics"].get(name)
        b = new["metrics"].get(name)
        if a is None or b is None:
            print(f"  {name:<28} {a} -> {b}  [only one side]")
            continue
        rel = (b - a) / max(abs(a), 1e-12)
        flag = ""
        if args.threshold is not None and abs(rel) > args.threshold:
            drifted += 1
            flag = f"  [> {args.threshold:g}]"
        print(f"  {name:<28} {a:.6g} -> {b:.6g}  ({rel:+.2%}){flag}")
    if drifted:
        print(f"{drifted} metrics past threshold", file=sys.stderr)
        return EXIT_DIFF
    return EXIT_OK


def _sweep_common_args(parser: argparse.ArgumentParser) -> None:
    """Execution flags shared by ``sweep run`` and ``sweep resume``."""
    parser.add_argument(
        "--db",
        default="sweep.db",
        metavar="PATH",
        help="result-store database file (default %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="process-pool size; 0 runs trials in-process without "
        "fault isolation (default %(default)s)",
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method (default: platform default)",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="stop (as interrupted) after N completed trials — for "
        "drills and tests of the resume path",
    )
    _profiling_args(parser)
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="structured JSON logs"
    )


def _sweep_execute(args: argparse.Namespace, spec, store) -> int:
    """Drive one ``sweep run``/``sweep resume`` invocation to its exit code."""
    from repro.sweep import run_campaign

    setup_logging(args.verbose)

    def on_trial(trial, status):
        print(f"  [{status:>6}] {trial.key}", file=sys.stderr)

    with _sampling_profiler(args):
        summary = run_campaign(
            spec,
            store,
            workers=args.workers,
            start_method=args.start_method,
            stop_after=args.stop_after,
            on_trial=on_trial,
        )
    print(
        f"campaign {summary.name!r}: {summary.completed} completed, "
        f"{summary.skipped} skipped, {summary.failed} failed, "
        f"{summary.retried} retries, {summary.crash_recoveries} pool "
        f"rebuilds in {summary.wall_s:.1f}s "
        f"({summary.trials_per_min:.1f} trials/min)",
        file=sys.stderr,
    )
    if summary.interrupted:
        print(
            f"interrupted; continue with: repro sweep resume "
            f"{summary.name} --db {args.db}",
            file=sys.stderr,
        )
        return 1
    return 0


_FOLLOW_BASE_FIELDS = frozenset({"id", "key", "event", "attempt", "pid", "ts"})


def _sweep_follow(store, name: str, interval: float) -> int:
    """Tail a campaign's worker heartbeats until it finishes.

    Polls the result store (the same file the workers append to, so
    this is safe from any terminal) and prints one line per heartbeat.
    Exits once the campaign has left ``running`` and the event log is
    drained; on a finished campaign it replays the full history and
    returns immediately.
    """
    info = store.campaign_info(name)
    last_id = 0
    while True:
        events = store.events_since(info["id"], after_id=last_id)
        for event in events:
            last_id = event["id"]
            extras = " ".join(
                f"{k}={event[k]}"
                for k in sorted(event)
                if k not in _FOLLOW_BASE_FIELDS
            )
            stamp = time.strftime("%H:%M:%S", time.localtime(event["ts"]))
            print(
                f"{stamp}  pid {event['pid']:<8} {event['event']:<7} "
                f"{event['key']:<32} attempt {event['attempt']}"
                + (f"  {extras}" if extras else ""),
                flush=True,
            )
        info = store.campaign_info(name)
        if info["status"] != "running" and not events:
            counts = ", ".join(
                f"{k}={v}" for k, v in sorted(info["trials"].items())
            )
            print(f"{name}: {info['status']} ({counts or 'no trials'})")
            return EXIT_OK
        if not events:
            time.sleep(interval)


def _sweep_main(argv: list[str]) -> int:
    """The ``repro sweep`` subcommand: experiment campaigns."""
    from repro.sweep import (
        ResultStore,
        build_sweep_report,
        load_spec,
        render_sweep_report,
        write_sweep_report,
    )

    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Fault-tolerant multi-process experiment campaigns "
        "(see README 'Sweeps' for the spec format)",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    run = commands.add_parser("run", help="run a campaign from a spec file")
    run.add_argument("spec", help="sweep spec JSON file")
    _sweep_common_args(run)
    resume = commands.add_parser(
        "resume",
        help="continue an interrupted campaign, skipping completed trials",
    )
    resume.add_argument("campaign", help="campaign name in the store")
    _sweep_common_args(resume)
    status = commands.add_parser(
        "status",
        help="show campaign progress (safe while a campaign is running)",
    )
    status.add_argument(
        "--db", default="sweep.db", metavar="PATH", help="result-store file"
    )
    status.add_argument(
        "campaign", nargs="?", default=None,
        help="campaign name; omit to list all campaigns",
    )
    status.add_argument(
        "--follow",
        action="store_true",
        help="tail live worker heartbeats until the campaign finishes "
        "(requires a campaign name)",
    )
    status.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="--follow poll interval in seconds (default %(default)s)",
    )
    trace = commands.add_parser(
        "trace",
        help="print the stitched cross-process span tree of a campaign",
    )
    trace.add_argument("campaign", help="campaign name in the store")
    trace.add_argument(
        "--db", default="sweep.db", metavar="PATH", help="result-store file"
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the span tree as JSON instead of the ASCII rendering",
    )
    rep = commands.add_parser(
        "report",
        help="aggregate a campaign: bootstrap CIs per cell + generator "
        "ranking",
    )
    rep.add_argument("campaign", help="campaign name in the store")
    rep.add_argument(
        "--db", default="sweep.db", metavar="PATH", help="result-store file"
    )
    rep.add_argument(
        "--out",
        default=None,
        metavar="OUT.json",
        help="also write the sweep report JSON (diffable with "
        "'repro report diff')",
    )
    rep.add_argument(
        "--bootstrap",
        type=int,
        default=400,
        help="bootstrap resamples per interval (default %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            spec = load_spec(args.spec)
            return _sweep_execute(args, spec, ResultStore(args.db))
        if args.command == "resume":
            store = ResultStore(args.db)
            return _sweep_execute(args, store.load_spec(args.campaign), store)
        if args.command == "status":
            store = ResultStore(args.db)
            if args.campaign is None:
                if args.follow:
                    parser.error("--follow requires a campaign name")
                for entry in store.list_campaigns():
                    counts = ", ".join(
                        f"{k}={v}" for k, v in sorted(entry["trials"].items())
                    )
                    print(
                        f"{entry['name']:<24} {entry['status']:<12} "
                        f"{counts or 'no trials'}"
                    )
                return EXIT_OK
            if args.follow:
                return _sweep_follow(store, args.campaign, args.interval)
            counts = store.counts(store.campaign_id(args.campaign))
            total = sum(counts.values())
            done = counts.get("done", 0)
            print(
                f"{args.campaign}: {done}/{total} done "
                + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            )
            return EXIT_OK
        if args.command == "trace":
            import json as _json

            from repro.sweep import render_trace_tree, stitch_campaign_trace

            tree = stitch_campaign_trace(ResultStore(args.db), args.campaign)
            if args.json:
                print(_json.dumps(tree, indent=2))
            else:
                print(render_trace_tree(tree))
            return EXIT_OK
        store = ResultStore(args.db)
        payload = build_sweep_report(
            store, args.campaign, n_boot=args.bootstrap
        )
        if args.out is not None:
            write_sweep_report(payload, args.out)
            print(f"sweep report written to {args.out}", file=sys.stderr)
        print(render_sweep_report(payload))
        return EXIT_OK
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INVALID


def _bench_main(argv: list[str]) -> int:
    """The ``repro bench`` subcommand: benchmark trend tracking."""
    from repro.obs.benchtrend import (
        DEFAULT_THRESHOLD,
        load_entries,
        render_history,
        trend_rows,
    )

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Track benchmark results across revisions",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    history = commands.add_parser(
        "history",
        help="render the per-revision trend table from BENCH_* records "
        "and flag regressions between the two latest revisions",
    )
    history.add_argument(
        "path",
        nargs="?",
        default=".",
        help="a BENCH_*.json / BENCH_history.jsonl file or a directory "
        "holding them (default: current directory)",
    )
    history.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional change in the worse direction that counts as "
        "a regression (default %(default)s)",
    )
    history.add_argument(
        "--check",
        action="store_true",
        help=f"exit {EXIT_DIFF} when any headline metric regressed",
    )
    args = parser.parse_args(argv)
    try:
        rows = trend_rows(load_entries(args.path), threshold=args.threshold)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INVALID
    print(render_history(rows))
    regressed = [row for row in rows if row.regressed]
    if regressed:
        print(
            f"{len(regressed)} headline metric(s) regressed more than "
            f"{args.threshold:.0%} against the previous revision",
            file=sys.stderr,
        )
        if args.check:
            return EXIT_DIFF
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    ``repro run|report|snapshot|serve|query|sweep|bench|cluster|ingest
    |analytics ...`` dispatch
    to the subcommands; anything else is treated as ``run`` flags so
    existing ``python -m repro.cli --scale small ...`` invocations keep
    working.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    subcommands = {
        "report": _report_main,
        "snapshot": _snapshot_main,
        "serve": _serve_main,
        "query": _query_main,
        "sweep": _sweep_main,
        "bench": _bench_main,
        "cluster": _cluster_main,
        "ingest": _ingest_main,
        "analytics": _analytics_main,
    }
    if argv and argv[0] in subcommands:
        return subcommands[argv[0]](argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return _run_main(argv)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro report show ... | head`)
        # closed the pipe; silence the interpreter's flush-at-exit noise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
