"""Gridded population rasters derived from a :class:`PopulationField`.

The CIESIN dataset the paper uses is a raster of population counts per
grid cell.  Analyses that want raster semantics (Section IV patch
tallies, the fractal-dimension check of population density) aggregate the
synthetic point field onto a :class:`~repro.geo.grid.PatchGrid` here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.geo.grid import PatchGrid
from repro.geo.regions import Region
from repro.population.worldmodel import PopulationField


@dataclass(frozen=True)
class PopulationRaster:
    """Population aggregated onto a patch grid.

    Attributes:
        grid: the underlying patch grid.
        population: persons per cell (flat-index order).
        online: online users per cell.
    """

    grid: PatchGrid
    population: np.ndarray
    online: np.ndarray

    def __post_init__(self) -> None:
        if self.population.shape != (self.grid.n_cells,):
            raise AnalysisError("population array does not match grid size")
        if self.online.shape != (self.grid.n_cells,):
            raise AnalysisError("online array does not match grid size")

    @property
    def total_population(self) -> float:
        """Total persons inside the raster's region."""
        return float(self.population.sum())

    @property
    def total_online(self) -> float:
        """Total online users inside the raster's region."""
        return float(self.online.sum())

    def occupied_cells(self) -> np.ndarray:
        """Flat indices of cells with non-zero population."""
        return np.flatnonzero(self.population > 0)

    def occupied_centers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lats, lons, population)`` of occupied cells."""
        lats, lons = self.grid.cell_centers()
        idx = self.occupied_cells()
        return lats[idx], lons[idx], self.population[idx]


def rasterize(
    field: PopulationField,
    region: Region,
    cell_arcmin: float,
) -> PopulationRaster:
    """Aggregate a population point field onto a grid over ``region``.

    Points outside the region are ignored (exactly how the paper's patch
    tallies treat population outside each study box).
    """
    grid = PatchGrid(region=region, cell_arcmin=cell_arcmin)
    population = grid.tally(field.lats, field.lons, weights=field.weights)
    online = grid.tally(field.lats, field.lons, weights=field.online_weights)
    return PopulationRaster(grid=grid, population=population, online=online)
