"""Synthetic population substrate (CIESIN + Nua stand-in).

Builds a world of economic zones with Zipf city systems and a weighted
population point field carrying both residents and online users; rasters
aggregate that field onto arbitrary patch grids.
"""

from repro.population.cities import (
    City,
    seed_cities,
    seed_zone_names,
    synthesize_cities,
    zipf_populations,
)
from repro.population.raster import PopulationRaster, rasterize
from repro.population.worldmodel import (
    EconomicZone,
    PopulationField,
    World,
    build_world,
    default_zones,
)

__all__ = [
    "City",
    "seed_cities",
    "seed_zone_names",
    "synthesize_cities",
    "zipf_populations",
    "PopulationRaster",
    "rasterize",
    "EconomicZone",
    "PopulationField",
    "World",
    "build_world",
    "default_zones",
]
