"""Cities: the anchors of the synthetic population model.

The population substrate is built from cities for two reasons.  First,
population-per-patch statistics in Section IV are driven by urban
concentration, so a Zipf-distributed city system with clustered placement
reproduces the right marginals (including the ~1.5 fractal dimension of
population density confirmed in Section II).  Second, the IxMapper
geolocation simulator needs the ISP hostname convention — routers named
with city/airport codes — so every city carries a code.

Seed tables below list real metropolitan areas with approximate
coordinates and IATA-style codes; synthetic cities fill out the long tail
of each economic zone's city-size distribution.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.geo.coords import GeoPoint


@dataclass(frozen=True, slots=True)
class City:
    """A population centre.

    Attributes:
        name: display name.
        code: short uppercase code used in router hostnames (IATA-style).
        location: city centre coordinates.
        population: resident population (persons).
        zone: name of the economic zone the city belongs to.
    """

    name: str
    code: str
    location: GeoPoint
    population: float
    zone: str

    def __post_init__(self) -> None:
        if not self.code or not self.code.isupper():
            raise ConfigError(f"city code must be non-empty uppercase, got {self.code!r}")
        if self.population <= 0:
            raise ConfigError(f"city population must be positive, got {self.population}")


# (name, code, lat, lon, population-in-millions of the metro area)
_SEED_ROWS: dict[str, list[tuple[str, str, float, float, float]]] = {
    "USA": [
        ("New York", "NYC", 40.71, -74.01, 18.3),
        ("Los Angeles", "LAX", 34.05, -118.24, 12.4),
        ("Chicago", "CHI", 41.88, -87.63, 9.1),
        ("Washington", "IAD", 38.90, -77.04, 7.6),
        ("San Francisco", "SFO", 37.77, -122.42, 7.0),
        ("Philadelphia", "PHL", 39.95, -75.17, 6.1),
        ("Boston", "BOS", 42.36, -71.06, 5.8),
        ("Detroit", "DTW", 42.33, -83.05, 5.4),
        ("Dallas", "DFW", 32.78, -96.80, 5.2),
        ("Houston", "IAH", 29.76, -95.37, 4.7),
        ("Atlanta", "ATL", 33.75, -84.39, 4.1),
        ("Miami", "MIA", 25.76, -80.19, 3.9),
        ("Seattle", "SEA", 47.61, -122.33, 3.6),
        ("Phoenix", "PHX", 33.45, -112.07, 3.3),
        ("Minneapolis", "MSP", 44.98, -93.27, 3.0),
        ("Cleveland", "CLE", 41.50, -81.69, 2.9),
        ("San Diego", "SAN", 32.72, -117.16, 2.8),
        ("St. Louis", "STL", 38.63, -90.20, 2.6),
        ("Denver", "DEN", 39.74, -104.99, 2.6),
        ("Tampa", "TPA", 27.95, -82.46, 2.4),
        ("Pittsburgh", "PIT", 40.44, -79.99, 2.4),
        ("Portland", "PDX", 45.52, -122.68, 2.3),
        ("Cincinnati", "CVG", 39.10, -84.51, 2.0),
        ("Sacramento", "SMF", 38.58, -121.49, 1.8),
        ("Kansas City", "MCI", 39.10, -94.58, 1.8),
        ("Milwaukee", "MKE", 43.04, -87.91, 1.7),
        ("Orlando", "MCO", 28.54, -81.38, 1.6),
        ("Indianapolis", "IND", 39.77, -86.16, 1.6),
        ("San Antonio", "SAT", 29.42, -98.49, 1.6),
        ("Columbus", "CMH", 39.96, -83.00, 1.5),
        ("Charlotte", "CLT", 35.23, -80.84, 1.5),
        ("New Orleans", "MSY", 29.95, -90.07, 1.3),
        ("Salt Lake City", "SLC", 40.76, -111.89, 1.3),
        ("Nashville", "BNA", 36.16, -86.78, 1.2),
        ("Austin", "AUS", 30.27, -97.74, 1.2),
        ("Memphis", "MEM", 35.15, -90.05, 1.1),
        ("Raleigh", "RDU", 35.78, -78.64, 1.1),
        ("Oklahoma City", "OKC", 35.47, -97.52, 1.0),
        ("Jacksonville", "JAX", 30.33, -81.66, 1.0),
        ("Buffalo", "BUF", 42.89, -78.88, 1.0),
        ("Albuquerque", "ABQ", 35.08, -106.65, 0.7),
        ("Omaha", "OMA", 41.26, -95.93, 0.7),
        ("Boise", "BOI", 43.62, -116.21, 0.4),
        ("Billings", "BIL", 45.78, -108.50, 0.15),
    ],
    "W. Europe": [
        ("London", "LON", 51.51, -0.13, 12.0),
        ("Paris", "PAR", 48.86, 2.35, 11.1),
        ("Milan", "MIL", 45.46, 9.19, 4.1),
        ("Madrid", "MAD", 40.42, -3.70, 5.5),
        ("Barcelona", "BCN", 41.39, 2.17, 4.4),
        ("Berlin", "BER", 52.52, 13.41, 4.0),
        ("Frankfurt", "FRA", 50.11, 8.68, 2.6),
        ("Munich", "MUC", 48.14, 11.58, 2.4),
        ("Hamburg", "HAM", 53.55, 9.99, 2.5),
        ("Amsterdam", "AMS", 52.37, 4.90, 2.3),
        ("Brussels", "BRU", 50.85, 4.35, 2.1),
        ("Vienna", "VIE", 48.21, 16.37, 2.2),
        ("Lyon", "LYS", 45.76, 4.84, 1.7),
        ("Marseille", "MRS", 43.30, 5.37, 1.6),
        ("Turin", "TRN", 45.07, 7.69, 1.7),
        ("Cologne", "CGN", 50.94, 6.96, 1.8),
        ("Manchester", "MAN", 53.48, -2.24, 2.6),
        ("Birmingham", "BHX", 52.48, -1.90, 2.5),
        ("Zurich", "ZRH", 47.37, 8.54, 1.3),
        ("Geneva", "GVA", 46.20, 6.14, 0.9),
        ("Stuttgart", "STR", 48.78, 9.18, 1.6),
        ("Dusseldorf", "DUS", 51.23, 6.78, 1.5),
        ("Rotterdam", "RTM", 51.92, 4.48, 1.2),
        ("Leeds", "LBA", 53.80, -1.55, 1.8),
        ("Glasgow", "GLA", 55.86, -4.25, 1.7),
        ("Edinburgh", "EDI", 55.95, -3.19, 0.9),
        ("Prague", "PRG", 50.08, 14.44, 1.3),
        ("Copenhagen", "CPH", 55.68, 12.57, 1.3),
        ("Luxembourg", "LUX", 49.61, 6.13, 0.4),
        ("Strasbourg", "SXB", 48.57, 7.75, 0.7),
        ("Nuremberg", "NUE", 49.45, 11.08, 0.8),
        ("Bordeaux", "BOD", 44.84, -0.58, 0.9),
        ("Toulouse", "TLS", 43.60, 1.44, 1.0),
        ("Bristol", "BRS", 51.45, -2.59, 0.7),
    ],
    "Japan": [
        ("Tokyo", "TYO", 35.68, 139.69, 26.4),
        ("Osaka", "OSA", 34.69, 135.50, 11.0),
        ("Nagoya", "NGO", 35.18, 136.91, 5.3),
        ("Sapporo", "CTS", 43.06, 141.35, 2.2),
        ("Fukuoka", "FUK", 33.59, 130.40, 2.1),
        ("Kobe", "UKB", 34.69, 135.20, 1.5),
        ("Kyoto", "UKY", 35.01, 135.77, 1.5),
        ("Yokohama", "YOK", 35.44, 139.64, 3.4),
        ("Hiroshima", "HIJ", 34.39, 132.46, 1.2),
        ("Sendai", "SDJ", 38.27, 140.87, 1.0),
        ("Kitakyushu", "KKJ", 33.88, 130.88, 1.0),
        ("Niigata", "KIJ", 37.90, 139.02, 0.8),
        ("Shizuoka", "FSZ", 34.98, 138.38, 0.7),
        ("Okayama", "OKJ", 34.66, 133.92, 0.7),
        ("Kumamoto", "KMJ", 32.80, 130.71, 0.7),
        ("Kagoshima", "KOJ", 31.60, 130.56, 0.6),
        ("Kanazawa", "QKW", 36.56, 136.66, 0.5),
        ("Nagano", "QNG", 36.65, 138.18, 0.4),
    ],
    "Africa": [
        ("Lagos", "LOS", 6.52, 3.38, 7.2),
        ("Cairo", "CAI", 30.04, 31.24, 10.2),
        ("Johannesburg", "JNB", -26.20, 28.05, 5.8),
        ("Kinshasa", "FIH", -4.44, 15.27, 5.1),
        ("Nairobi", "NBO", -1.29, 36.82, 2.2),
        ("Casablanca", "CMN", 33.57, -7.59, 3.1),
        ("Cape Town", "CPT", -33.92, 18.42, 2.9),
        ("Accra", "ACC", 5.60, -0.19, 1.7),
        ("Dakar", "DKR", 14.72, -17.47, 2.0),
        ("Algiers", "ALG", 36.75, 3.06, 2.6),
        ("Tunis", "TUN", 36.81, 10.18, 1.9),
        ("Abidjan", "ABJ", 5.36, -4.01, 3.0),
    ],
    "South America": [
        ("Sao Paulo", "SAO", -23.55, -46.63, 17.1),
        ("Buenos Aires", "BUE", -34.60, -58.38, 12.0),
        ("Rio de Janeiro", "RIO", -22.91, -43.17, 10.8),
        ("Lima", "LIM", -12.05, -77.04, 7.4),
        ("Bogota", "BOG", 4.71, -74.07, 6.3),
        ("Santiago", "SCL", -33.45, -70.67, 5.3),
        ("Caracas", "CCS", 10.48, -66.90, 3.2),
        ("Medellin", "MDE", 6.24, -75.58, 2.7),
        ("Porto Alegre", "POA", -30.03, -51.23, 3.5),
        ("Montevideo", "MVD", -34.90, -56.16, 1.5),
        ("Quito", "UIO", -0.18, -78.47, 1.6),
    ],
    "Mexico": [
        ("Mexico City", "MEX", 19.43, -99.13, 18.1),
        ("Guadalajara", "GDL", 20.66, -103.35, 3.7),
        ("Monterrey", "MTY", 25.67, -100.31, 3.3),
        ("Guatemala City", "GUA", 14.63, -90.51, 2.2),
        ("San Jose CR", "SJO", 9.93, -84.08, 1.1),
        ("Panama City", "PTY", 8.98, -79.52, 1.2),
        ("Havana", "HAV", 23.11, -82.37, 2.2),
        ("Santo Domingo", "SDQ", 18.47, -69.89, 2.1),
        ("Puebla", "PBC", 19.04, -98.20, 1.9),
        ("Tijuana", "TIJ", 32.52, -117.04, 1.2),
    ],
    "Australia": [
        ("Sydney", "SYD", -33.87, 151.21, 4.1),
        ("Melbourne", "MEL", -37.81, 144.96, 3.5),
        ("Brisbane", "BNE", -27.47, 153.03, 1.6),
        ("Perth", "PER", -31.95, 115.86, 1.4),
        ("Adelaide", "ADL", -34.93, 138.60, 1.1),
        ("Canberra", "CBR", -35.28, 149.13, 0.3),
        ("Hobart", "HBA", -42.88, 147.33, 0.2),
    ],
}


def seed_cities(zone: str) -> list[City]:
    """Seed (real-world) cities for a named economic zone.

    Raises:
        ConfigError: if the zone has no seed table.
    """
    if zone not in _SEED_ROWS:
        raise ConfigError(f"no seed city table for zone {zone!r}")
    return [
        City(name, code, GeoPoint(lat, lon), millions * 1e6, zone)
        for name, code, lat, lon, millions in _SEED_ROWS[zone]
    ]


def seed_zone_names() -> tuple[str, ...]:
    """Names of all zones with seed city tables."""
    return tuple(_SEED_ROWS)


def _synthetic_code(index: int, zone_tag: str, taken: set[str]) -> str:
    """Deterministic unused code for the index-th synthetic city of a zone.

    The leading zone tag (a digit) keeps synthetic codes globally unique
    and disjoint from real IATA-style seed codes, which are all-alphabetic.
    """
    letters = string.ascii_uppercase
    while True:
        i = index
        code = zone_tag + letters[(i // 26) % 26] + letters[i % 26]
        if code not in taken:
            return code
        index += 1


def zipf_populations(
    n: int, largest: float, exponent: float = 1.0, floor: float = 5e3
) -> np.ndarray:
    """Zipf-law city sizes: the k-th city has ``largest / k**exponent``.

    Args:
        n: number of cities.
        largest: population of the rank-1 city.
        exponent: Zipf exponent (1.0 is the classical law).
        floor: minimum city population.

    Raises:
        ConfigError: on non-positive n, largest, or exponent.
    """
    if n <= 0 or largest <= 0 or exponent <= 0:
        raise ConfigError("n, largest and exponent must all be positive")
    ranks = np.arange(1, n + 1, dtype=float)
    return np.maximum(largest / ranks**exponent, floor)


def synthesize_cities(
    zone: str,
    region_north: float,
    region_south: float,
    region_west: float,
    region_east: float,
    n_synthetic: int,
    rng: np.random.Generator,
    zone_tag: str = "0",
    cluster_fraction: float = 0.7,
    levy_scale_deg: float = 0.6,
    levy_exponent: float = 1.6,
) -> list[City]:
    """Seed cities plus a synthetic Zipf tail for one economic zone.

    Synthetic cities are placed by a Levy-flight rule: with probability
    ``cluster_fraction`` a new city lands a power-law-distributed hop away
    from an existing city (producing the fractal clustering of real
    settlement patterns); otherwise it lands uniformly in the zone box.

    Returns:
        Seed cities followed by synthetic cities, largest first within
        each group.
    """
    cities = seed_cities(zone)
    if n_synthetic <= 0:
        return cities
    smallest_seed = min(c.population for c in cities)
    sizes = zipf_populations(n_synthetic, largest=smallest_seed * 0.95)
    taken = {c.code for c in cities}
    lat_span = region_north - region_south
    lon_span = region_east - region_west
    for i in range(n_synthetic):
        if cities and rng.random() < cluster_fraction:
            anchor = cities[int(rng.integers(len(cities)))].location
            # Pareto-tailed hop length, direction uniform.
            hop = levy_scale_deg * (rng.pareto(levy_exponent) + 0.05)
            angle = rng.uniform(0.0, 2.0 * np.pi)
            lat = anchor.lat + hop * np.sin(angle)
            lon = anchor.lon + hop * np.cos(angle)
        else:
            lat = region_south + rng.random() * lat_span
            lon = region_west + rng.random() * lon_span
        lat = float(np.clip(lat, region_south, region_north))
        lon = float(np.clip(lon, region_west, region_east))
        code = _synthetic_code(i, zone_tag, taken)
        taken.add(code)
        cities.append(
            City(
                name=f"{zone} town {i}",
                code=code,
                location=GeoPoint(lat, lon),
                population=float(sizes[i]),
                zone=zone,
            )
        )
    return cities
