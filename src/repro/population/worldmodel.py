"""The synthetic world: economic zones, cities, people, online users.

This is the stand-in for two of the paper's external datasets:

* CIESIN's *Gridded Population of the World* — replaced by a weighted
  population point field synthesised from Zipf city systems per zone;
* Nua's *How Many Online?* survey numbers — replaced by per-zone Internet
  penetration rates.

Zone parameters are calibrated to the paper's Table III: total
populations match its Population column, and penetration rates are the
ratio of its Online to Population columns.  The result is a world where
people-per-interface varies by a factor > 100 across zones while
online-users-per-interface varies by only a small factor — the planted
contrast the Table III reproduction must recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.geo.regions import Region
from repro.population.cities import City, synthesize_cities


@dataclass(frozen=True, slots=True)
class EconomicZone:
    """One economically homogeneous zone of the synthetic world.

    Attributes:
        name: zone name (matches the paper's Table III rows).
        box: bounding box in which the zone's population lives.  May be
            wider than the analysis region of the same name; analyses
            always re-filter by their own region boxes.
        population_millions: total resident population.
        online_millions: Internet users (Nua-style survey count).
        n_synthetic_cities: synthetic Zipf-tail cities to add to seeds.
        urban_fraction: share of population living in cities; the rest is
            spread as rural background across the box.
        interfaces_per_online: target network interfaces per online user;
            encodes infrastructure intensity differences between equally
            developed zones (the residual factor ~4 in Table III).
    """

    name: str
    box: Region
    population_millions: float
    online_millions: float
    n_synthetic_cities: int
    urban_fraction: float = 0.72
    interfaces_per_online: float = 1.0 / 900.0

    def __post_init__(self) -> None:
        if self.population_millions <= 0:
            raise ConfigError(f"zone {self.name!r}: population must be positive")
        if not (0 < self.online_millions <= self.population_millions):
            raise ConfigError(
                f"zone {self.name!r}: online users must be in (0, population]"
            )
        if not (0.0 < self.urban_fraction < 1.0):
            raise ConfigError(f"zone {self.name!r}: urban_fraction must be in (0,1)")
        if self.interfaces_per_online <= 0:
            raise ConfigError(
                f"zone {self.name!r}: interfaces_per_online must be positive"
            )

    @property
    def penetration(self) -> float:
        """Fraction of the population that is online."""
        return self.online_millions / self.population_millions


def default_zones(city_scale: float = 1.0) -> tuple[EconomicZone, ...]:
    """The seven Table III zones with paper-calibrated totals.

    Args:
        city_scale: multiplier on the synthetic city counts; tests use a
            small value to keep world construction fast.
    """

    def cities(n: int) -> int:
        return max(4, int(round(n * city_scale)))

    return (
        EconomicZone(
            "Africa",
            Region("Africa zone", north=35.0, south=-35.0, west=-18.0, east=50.0),
            population_millions=837.0,
            online_millions=4.15,
            n_synthetic_cities=cities(120),
            urban_fraction=0.40,
            interfaces_per_online=1.0 / 500.0,
        ),
        EconomicZone(
            "South America",
            Region("South America zone", north=13.0, south=-55.0, west=-82.0, east=-34.0),
            population_millions=341.0,
            online_millions=21.9,
            n_synthetic_cities=cities(90),
            urban_fraction=0.62,
            interfaces_per_online=1.0 / 2100.0,
        ),
        EconomicZone(
            "Mexico",
            Region("Mexico zone", north=33.0, south=8.0, west=-118.0, east=-60.0),
            population_millions=154.0,
            online_millions=3.42,
            n_synthetic_cities=cities(60),
            urban_fraction=0.60,
            interfaces_per_online=1.0 / 800.0,
        ),
        EconomicZone(
            "W. Europe",
            Region("W. Europe zone", north=58.0, south=36.0, west=-10.0, east=22.0),
            population_millions=366.0,
            online_millions=143.0,
            n_synthetic_cities=cities(140),
            urban_fraction=0.75,
            interfaces_per_online=1.0 / 1500.0,
        ),
        EconomicZone(
            "Japan",
            Region("Japan zone", north=46.0, south=30.0, west=129.0, east=146.0),
            population_millions=136.0,
            online_millions=47.1,
            n_synthetic_cities=cities(70),
            urban_fraction=0.78,
            interfaces_per_online=1.0 / 1250.0,
        ),
        EconomicZone(
            "Australia",
            Region("Australia zone", north=-10.0, south=-45.0, west=112.0, east=155.0),
            population_millions=18.0,
            online_millions=10.1,
            n_synthetic_cities=cities(30),
            urban_fraction=0.85,
            interfaces_per_online=1.0 / 550.0,
        ),
        EconomicZone(
            "USA",
            Region("USA zone", north=50.0, south=24.0, west=-130.0, east=-65.0),
            population_millions=299.0,
            online_millions=166.0,
            n_synthetic_cities=cities(220),
            urban_fraction=0.76,
            interfaces_per_online=1.0 / 590.0,
        ),
    )


@dataclass(frozen=True)
class PopulationField:
    """Weighted population point cloud: the gridded-population substitute.

    Attributes:
        lats, lons: point coordinates, degrees.
        weights: persons represented by each point.
        online_weights: online users represented by each point.
        zone_index: index into :attr:`zones` for each point.
        zones: the zones this field was synthesised from.
    """

    lats: np.ndarray
    lons: np.ndarray
    weights: np.ndarray
    online_weights: np.ndarray
    zone_index: np.ndarray
    zones: tuple[EconomicZone, ...]

    def __post_init__(self) -> None:
        n = self.lats.shape[0]
        for name in ("lons", "weights", "online_weights", "zone_index"):
            if getattr(self, name).shape[0] != n:
                raise ConfigError("population field arrays must be parallel")

    @property
    def total_population(self) -> float:
        """Total persons represented by the field."""
        return float(self.weights.sum())

    @property
    def total_online(self) -> float:
        """Total online users represented by the field."""
        return float(self.online_weights.sum())

    def region_population(self, region: Region) -> float:
        """Persons inside a region box."""
        mask = region.contains_mask(self.lats, self.lons)
        return float(self.weights[mask].sum())

    def region_online(self, region: Region) -> float:
        """Online users inside a region box."""
        mask = region.contains_mask(self.lats, self.lons)
        return float(self.online_weights[mask].sum())


@dataclass(frozen=True)
class World:
    """A fully synthesised world: zones, cities and a population field."""

    zones: tuple[EconomicZone, ...]
    cities: list[City]
    field: PopulationField = field(repr=False)

    def zone_by_name(self, name: str) -> EconomicZone:
        """Look up a zone by name.

        Raises:
            ConfigError: if unknown.
        """
        for zone in self.zones:
            if zone.name == name:
                return zone
        raise ConfigError(f"unknown zone {name!r}")

    def cities_in_zone(self, name: str) -> list[City]:
        """Cities belonging to the named zone."""
        return [c for c in self.cities if c.zone == name]


def _city_points(
    city: City, points_per_city: int, sigma_deg: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter a city's population into a Gaussian cloud of points."""
    n = max(1, points_per_city)
    lats = city.location.lat + rng.normal(0.0, sigma_deg, size=n)
    lons = city.location.lon + rng.normal(0.0, sigma_deg, size=n)
    return lats, lons


def build_world(
    rng: np.random.Generator,
    zones: tuple[EconomicZone, ...] | None = None,
    city_scale: float = 1.0,
    points_per_city: int = 12,
    rural_points_per_zone: int = 1500,
    city_sigma_deg: float = 0.12,
) -> World:
    """Synthesise the world: cities, then the population point field.

    Each city's population is scattered over ``points_per_city`` points
    with a Gaussian urban kernel.  The zone's rural remainder mostly
    clusters around cities with heavy-tailed displacement (exurban and
    small-settlement population concentrates near urban systems, which
    is what gridded population rasters show); a minority is spread
    uniformly over the zone box.  Online users are distributed
    proportionally to population within a zone (penetration is a
    zone-level property).

    Args:
        rng: the scenario's random generator.
        zones: zone definitions; defaults to :func:`default_zones`.
        city_scale: forwarded to :func:`default_zones` when ``zones`` is
            None and also scales rural point counts.
        points_per_city: population points per city.
        rural_points_per_zone: rural background points per zone.
        city_sigma_deg: urban kernel standard deviation in degrees.
    """
    if zones is None:
        zones = default_zones(city_scale=city_scale)
    all_cities: list[City] = []
    lat_parts: list[np.ndarray] = []
    lon_parts: list[np.ndarray] = []
    w_parts: list[np.ndarray] = []
    online_parts: list[np.ndarray] = []
    zone_parts: list[np.ndarray] = []

    for zi, zone in enumerate(zones):
        zone_cities = synthesize_cities(
            zone.name,
            zone.box.north,
            zone.box.south,
            zone.box.west,
            zone.box.east,
            n_synthetic=zone.n_synthetic_cities,
            rng=rng,
            zone_tag=str(zi),
        )
        all_cities.extend(zone_cities)
        raw_total = sum(c.population for c in zone_cities)
        urban_target = zone.population_millions * 1e6 * zone.urban_fraction
        scale = urban_target / raw_total
        for city in zone_cities:
            lats, lons = _city_points(city, points_per_city, city_sigma_deg, rng)
            lat_parts.append(np.clip(lats, -89.9, 89.9))
            lon_parts.append(np.clip(lons, -179.9, 179.9))
            per_point = city.population * scale / lats.shape[0]
            w_parts.append(np.full(lats.shape[0], per_point))
            zone_parts.append(np.full(lats.shape[0], zi, dtype=np.intp))
        # Rural background: mostly clustered near the zone's cities, with
        # a uniform residue across the box.
        n_rural = max(32, int(rural_points_per_zone * max(city_scale, 0.05)))
        rural_total = zone.population_millions * 1e6 * (1.0 - zone.urban_fraction)
        n_clustered = int(n_rural * 0.7)
        anchors = rng.integers(0, len(zone_cities), size=n_clustered)
        hops = 0.8 * (rng.pareto(1.5, size=n_clustered) + 0.3)
        angles = rng.uniform(0.0, 2.0 * np.pi, size=n_clustered)
        clat = np.array([zone_cities[a].location.lat for a in anchors])
        clon = np.array([zone_cities[a].location.lon for a in anchors])
        rlats = np.concatenate(
            [
                clat + hops * np.sin(angles),
                rng.uniform(zone.box.south, zone.box.north, size=n_rural - n_clustered),
            ]
        )
        rlons = np.concatenate(
            [
                clon + hops * np.cos(angles),
                rng.uniform(zone.box.west, zone.box.east, size=n_rural - n_clustered),
            ]
        )
        rlats = np.clip(rlats, zone.box.south, zone.box.north)
        rlons = np.clip(rlons, zone.box.west, zone.box.east)
        lat_parts.append(rlats)
        lon_parts.append(rlons)
        w_parts.append(np.full(n_rural, rural_total / n_rural))
        zone_parts.append(np.full(n_rural, zi, dtype=np.intp))

    lats = np.concatenate(lat_parts)
    lons = np.concatenate(lon_parts)
    weights = np.concatenate(w_parts)
    zone_index = np.concatenate(zone_parts)
    online = np.empty_like(weights)
    for zi, zone in enumerate(zones):
        mask = zone_index == zi
        online[mask] = weights[mask] * zone.penetration

    field_ = PopulationField(
        lats=lats,
        lons=lons,
        weights=weights,
        online_weights=online,
        zone_index=zone_index,
        zones=tuple(zones),
    )
    return World(zones=tuple(zones), cities=all_cities, field=field_)
