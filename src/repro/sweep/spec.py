"""Declarative sweep specifications and their expansion into trials.

A :class:`SweepSpec` describes a *campaign*: a parameter grid over seeds
x scenario scales x geolocation tools x generator configurations, plus
execution policy (per-trial timeout, retry limit, backoff).  The grid
has three trial kinds:

- ``pipeline`` cells run the full reproduction pipeline under a scenario
  built from a named scale plus dotted config overrides, and estimate
  the paper's headline statistics (alpha exponent, Waxman decay scale,
  distance-sensitive link fraction, intradomain link share);
- ``generator`` cells build one synthetic topology (Waxman / BA / ER /
  BRITE / GeoGen) and characterise its distance preference, feeding the
  generator-scoring pass of the aggregation layer;
- ``synthetic`` cells sleep for a fixed duration and return trivial
  metrics — the engine-throughput benchmark workload.

Every cell is crossed with the seed axis; optional random sampling
(``sample`` / ``sample_seed``) and a hard ``max_trials`` budget bound
the campaign.  Expansion is deterministic: the same spec always yields
the same trials with the same keys, which is what makes ``sweep
resume`` able to skip completed work.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.config import (
    ScenarioConfig,
    default_scenario,
    small_scenario,
    tiny_scenario,
)
from repro.errors import SweepError

#: Named scenario scales a pipeline cell may request.
SCALES = ("tiny", "small", "default")

_SCALE_BUILDERS = {
    "tiny": tiny_scenario,
    "small": small_scenario,
    "default": default_scenario,
}

#: Fault-injection modes a trial may carry (tests, smoke, demos).
INJECT_MODES = ("raise", "flaky", "hang", "crash", "crash_once")


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for keys and digests."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TrialSpec:
    """One expanded trial of a campaign.

    Attributes:
        key: stable unique identifier within the campaign (kind, seed,
            and a digest of the cell parameters).
        kind: ``"pipeline"``, ``"generator"``, or ``"synthetic"``.
        seed: the trial's RNG seed.
        params: the cell parameters (seed excluded).
        inject: optional fault-injection mode (see :data:`INJECT_MODES`).
    """

    key: str
    kind: str
    seed: int
    params: dict[str, Any]
    inject: str | None = None

    @property
    def cell(self) -> dict[str, Any]:
        """The trial's aggregation cell: kind + params, seed excluded."""
        return {"kind": self.kind, **self.params}

    def payload(self, attempt: int, timeout_s: float | None) -> dict[str, Any]:
        """The picklable work order shipped to a worker process."""
        return {
            "key": self.key,
            "kind": self.kind,
            "seed": self.seed,
            "params": dict(self.params),
            "inject": self.inject,
            "attempt": attempt,
            "timeout_s": timeout_s,
        }


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep campaign.

    Attributes:
        name: campaign name (the primary key in the result store).
        seeds: the seed axis every cell is crossed with.
        pipeline: pipeline cells; each a mapping with optional keys
            ``scale`` (one of :data:`SCALES`), ``mapper``,
            ``measurement``, ``region``, and ``overrides`` (dotted
            config paths -> values).
        generators: generator cells; each a mapping with ``generator``
            (``waxman`` / ``ba`` / ``er`` / ``brite`` / ``geogen``) plus
            generator-specific parameters.
        synthetic: synthetic cells; each a mapping with ``duration_s``.
        sample: when set, keep only this many trials, drawn without
            replacement using ``sample_seed``.
        sample_seed: RNG seed of the sampling draw.
        max_trials: hard budget; expansion truncates past it.
        trial_timeout_s: per-trial wall-clock limit enforced inside the
            worker (``None`` disables it).
        max_retries: attempts beyond the first before a trial is
            recorded as failed.
        retry_backoff_s: base of the exponential retry backoff.
        cache_dir: optional artifact-cache directory shared by pipeline
            trials (the cache is process-safe: atomic temp-file renames).
        inject: expanded-trial index -> fault-injection mode, applied
            after sampling/truncation; used by tests and the smoke
            campaign to plant failures.
    """

    name: str
    seeds: tuple[int, ...]
    pipeline: tuple[dict[str, Any], ...] = ()
    generators: tuple[dict[str, Any], ...] = ()
    synthetic: tuple[dict[str, Any], ...] = ()
    sample: int | None = None
    sample_seed: int = 0
    max_trials: int | None = None
    trial_timeout_s: float | None = None
    max_retries: int = 2
    retry_backoff_s: float = 0.25
    cache_dir: str | None = None
    inject: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("a sweep spec needs a non-empty name")
        if not self.seeds:
            raise SweepError("a sweep spec needs at least one seed")
        if not (self.pipeline or self.generators or self.synthetic):
            raise SweepError("a sweep spec needs at least one cell")
        if self.sample is not None and self.sample < 1:
            raise SweepError("sample must be >= 1 when set")
        if self.max_trials is not None and self.max_trials < 1:
            raise SweepError("max_trials must be >= 1 when set")
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise SweepError("trial_timeout_s must be positive when set")
        if self.max_retries < 0:
            raise SweepError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise SweepError("retry_backoff_s must be >= 0")
        for cell in self.pipeline:
            scale = cell.get("scale", "tiny")
            if scale not in SCALES:
                raise SweepError(f"unknown scale {scale!r}; use one of {SCALES}")
        for mode in self.inject.values():
            if mode not in INJECT_MODES:
                raise SweepError(
                    f"unknown inject mode {mode!r}; use one of {INJECT_MODES}"
                )

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The JSON layout (also what the result store persists)."""
        payload = dataclasses.asdict(self)
        payload["seeds"] = list(self.seeds)
        payload["pipeline"] = [dict(c) for c in self.pipeline]
        payload["generators"] = [dict(c) for c in self.generators]
        payload["synthetic"] = [dict(c) for c in self.synthetic]
        payload["inject"] = {str(k): v for k, v in self.inject.items()}
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Parse a spec payload.

        Raises:
            SweepError: on missing/invalid fields.
        """
        if not isinstance(payload, Mapping):
            raise SweepError("sweep spec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SweepError(f"unknown sweep spec fields: {', '.join(unknown)}")
        try:
            return cls(
                name=str(payload["name"]),
                seeds=tuple(int(s) for s in payload["seeds"]),
                pipeline=tuple(dict(c) for c in payload.get("pipeline", ())),
                generators=tuple(dict(c) for c in payload.get("generators", ())),
                synthetic=tuple(dict(c) for c in payload.get("synthetic", ())),
                sample=(
                    None if payload.get("sample") is None
                    else int(payload["sample"])
                ),
                sample_seed=int(payload.get("sample_seed", 0)),
                max_trials=(
                    None if payload.get("max_trials") is None
                    else int(payload["max_trials"])
                ),
                trial_timeout_s=(
                    None if payload.get("trial_timeout_s") is None
                    else float(payload["trial_timeout_s"])
                ),
                max_retries=int(payload.get("max_retries", 2)),
                retry_backoff_s=float(payload.get("retry_backoff_s", 0.25)),
                cache_dir=(
                    None if payload.get("cache_dir") is None
                    else str(payload["cache_dir"])
                ),
                inject={
                    int(k): str(v)
                    for k, v in dict(payload.get("inject", {})).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(f"invalid sweep spec: {exc}")

    def digest(self) -> str:
        """Content hash of the spec; resume refuses a mismatched spec."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()

    # -- expansion ------------------------------------------------------------

    def expand(self) -> list[TrialSpec]:
        """Deterministically expand the grid into trials.

        Cells are enumerated in declaration order (pipeline, then
        generator, then synthetic), each crossed with the seed axis;
        sampling and the trial budget are applied afterwards, then
        fault-injection modes are attached by final index.
        """
        trials: list[TrialSpec] = []
        groups = (
            ("pipeline", self.pipeline),
            ("generator", self.generators),
            ("synthetic", self.synthetic),
        )
        for kind, cells in groups:
            for cell in cells:
                params = dict(cell)
                digest = hashlib.sha256(
                    canonical_json({"kind": kind, **params}).encode("utf-8")
                ).hexdigest()[:10]
                for seed in self.seeds:
                    trials.append(
                        TrialSpec(
                            key=f"{kind}:{digest}:s{seed}",
                            kind=kind,
                            seed=int(seed),
                            params=params,
                        )
                    )
        keys = [t.key for t in trials]
        if len(set(keys)) != len(keys):
            raise SweepError("duplicate trials in sweep spec (repeated cell/seed)")
        if self.sample is not None and self.sample < len(trials):
            rng = np.random.default_rng(self.sample_seed)
            picked = sorted(
                rng.choice(len(trials), size=self.sample, replace=False).tolist()
            )
            trials = [trials[i] for i in picked]
        if self.max_trials is not None:
            trials = trials[: self.max_trials]
        for index, mode in self.inject.items():
            if 0 <= index < len(trials):
                trials[index] = dataclasses.replace(trials[index], inject=mode)
        return trials


def load_spec(path: str | Path) -> SweepSpec:
    """Read a sweep spec JSON file.

    Raises:
        SweepError: on unreadable files, bad JSON, or invalid specs.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SweepError(f"cannot read sweep spec {path}: {exc}")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SweepError(f"sweep spec {path} is not valid JSON: {exc}")
    return SweepSpec.from_dict(payload)


# -- scenario construction ----------------------------------------------------


def _replace_dotted(config: Any, dotted: str, value: Any) -> Any:
    """Return a copy of a nested frozen dataclass with one field replaced."""
    head, _, rest = dotted.partition(".")
    if not dataclasses.is_dataclass(config) or not any(
        f.name == head for f in dataclasses.fields(config)
    ):
        raise SweepError(
            f"unknown config override path {dotted!r} "
            f"on {type(config).__name__}"
        )
    current = getattr(config, head)
    new = _replace_dotted(current, rest, value) if rest else value
    return dataclasses.replace(config, **{head: new})


def build_scenario(
    seed: int,
    scale: str = "tiny",
    overrides: Mapping[str, Any] | None = None,
) -> ScenarioConfig:
    """Build one pipeline trial's scenario from a cell's parameters.

    Args:
        seed: the trial seed.
        scale: a named base scenario (:data:`SCALES`).
        overrides: dotted config paths -> values, e.g.
            ``{"city_scale": 0.2, "ground_truth.total_routers": 900}``.

    Raises:
        SweepError: for an unknown scale or override path.
    """
    try:
        builder = _SCALE_BUILDERS[scale]
    except KeyError:
        raise SweepError(f"unknown scale {scale!r}; use one of {SCALES}") from None
    config = builder(seed)
    for dotted, value in (overrides or {}).items():
        config = _replace_dotted(config, dotted, value)
    return config
