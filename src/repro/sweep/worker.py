"""The per-trial worker: a picklable, spawn-safe process entrypoint.

:func:`execute_trial` is the only function the engine ships across the
process boundary.  It is deliberately a plain module-level function
taking one JSON-safe dict and returning one JSON-safe dict, so it
pickles under both the ``fork`` and ``spawn`` start methods; under
``spawn`` the child re-imports this module from scratch, which also
re-runs the pipeline's codec registration (idempotent by design — the
codec registry is a plain dict keyed by name).

Observability across the process boundary: the contextvar-propagated
tracer/metrics of :mod:`repro.obs` do **not** survive into workers.
Under ``spawn`` the child inherits nothing; under ``fork`` it inherits
a *copy* whose spans and counters would never drain back to the
parent.  Each trial therefore installs a fresh
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.trace.Tracer` for its own run and ships the
collected data home inside a RunReport-compatible record in its result
dict; the engine persists that record in the result store.

What *does* cross the boundary is the campaign's
:class:`~repro.obs.trace.TraceContext`, serialised into the payload:
the worker re-installs it, so its trial spans carry the campaign
trace ID and name the campaign root as parent — the hooks
:mod:`repro.sweep.tracing` uses to stitch one tree.  Workers also
append ``start``/``finish``/``fail`` heartbeat events straight to the
result store (WAL handles the concurrent writers); the ``start`` beat
lands *before* fault injection, so even a trial that crashes its
process leaves evidence it began.  Heartbeats are best-effort — a
failure to record one never fails the trial.

Per-trial timeouts are enforced *inside* the worker with
``signal.setitimer`` (workers run trials on their main thread, so
``SIGALRM`` delivery is safe): a hanging trial raises
:class:`TrialTimeout` and frees its pool slot without the engine having
to tear the pool down.  A hard engine-side deadline remains as the
backstop for code that blocks in C and never returns to the
interpreter.
"""

from __future__ import annotations

import math
import os
import signal
import time
from contextlib import ExitStack
from typing import Any

import numpy as np

from repro.core.asgeo import link_domain_row
from repro.core.density import patch_regression
from repro.core.distance import (
    preference_function,
    sensitivity_limit,
    waxman_fit,
)
from repro.core.experiments import compare_generator, dataset_from_graph
from repro.datasets.pipeline import run_pipeline
from repro.errors import AnalysisError, ReproError, SweepError
from repro.generators import (
    GeoGenConfig,
    barabasi_albert_graph,
    brite_graph,
    erdos_renyi_graph,
    geogen_graph,
    waxman_graph,
)
from repro.geo.regions import EUROPE, JAPAN, US, WORLD
from repro.obs import (
    MetricsRegistry,
    RunReport,
    TraceContext,
    Tracer,
    dataset_digest,
    use_metrics,
    use_trace_context,
    use_tracer,
)
from repro.obs import span as obs_span
from repro.population.worldmodel import build_world
from repro.sweep.spec import build_scenario

_REGIONS = {"US": US, "Europe": EUROPE, "Japan": JAPAN, "World": WORLD}

#: Bin width (miles) for f(d) estimates per analysis region.
_BIN_MILES = {"US": 35.0, "Europe": 15.0, "Japan": 11.0, "World": 35.0}


class TrialTimeout(ReproError):
    """A trial exceeded its per-trial wall-clock budget."""


class InjectedFailure(ReproError):
    """A deliberately planted trial failure (tests / smoke campaigns)."""


def _apply_injection(inject: str | None, attempt: int) -> None:
    """Fault injection: raise, hang, or kill the worker outright."""
    if inject is None:
        return
    if inject == "raise":
        raise InjectedFailure("injected failure (every attempt)")
    if inject == "flaky" and attempt == 0:
        raise InjectedFailure("injected failure (first attempt only)")
    if inject == "hang":
        time.sleep(3600.0)
    if inject == "crash":
        os._exit(13)
    if inject == "crash_once" and attempt == 0:
        os._exit(13)


class _trial_alarm:
    """SIGALRM-based wall-clock guard around one trial."""

    def __init__(self, timeout_s: float | None) -> None:
        self.timeout_s = timeout_s
        self._previous: Any = None

    def __enter__(self) -> "_trial_alarm":
        if self.timeout_s is not None and hasattr(signal, "setitimer"):
            def on_alarm(signum, frame):
                raise TrialTimeout(
                    f"trial exceeded its {self.timeout_s:g}s budget"
                )

            self._previous = signal.signal(signal.SIGALRM, on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.timeout_s)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._previous is not None:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)


def _maybe(fn, *args: Any, **kwargs: Any) -> float:
    """Run one estimator; an unusable-data failure yields NaN (recorded
    as a missing metric), so a sparse trial never fails the campaign."""
    try:
        return float(fn(*args, **kwargs))
    except AnalysisError:
        return float("nan")


def _pipeline_metrics(payload: dict[str, Any]) -> tuple[dict[str, float], dict[str, str]]:
    """Run the full pipeline and estimate the paper's headline numbers."""
    params = payload["params"]
    config = build_scenario(
        payload["seed"],
        scale=params.get("scale", "tiny"),
        overrides=params.get("overrides"),
    )
    result = run_pipeline(config, cache_dir=payload.get("cache_dir"))
    mapper = params.get("mapper", "IxMapper")
    measurement = params.get("measurement", "Skitter")
    region = _REGIONS[params.get("region", "US")]
    dataset = result.dataset(mapper, measurement)

    metrics: dict[str, float] = {
        "n_nodes": float(dataset.n_nodes),
        "n_links": float(dataset.n_links),
    }
    metrics["alpha_exponent"] = _maybe(
        lambda: patch_regression(dataset, result.world.field, region).fit.slope
    )
    try:
        pref = preference_function(
            dataset, region, _BIN_MILES[region.name]
        )
    except AnalysisError:
        pref = None
    if pref is not None:
        metrics["waxman_l_miles"] = _maybe(lambda: waxman_fit(pref).l_miles)
        metrics["sensitive_fraction"] = _maybe(
            lambda: sensitivity_limit(pref).fraction_below
        )
    metrics["intradomain_share"] = _maybe(
        lambda: link_domain_row(dataset, "World").intradomain_fraction
    )
    artifacts = {dataset.label: dataset_digest(dataset)}
    return metrics, artifacts


def _make_generator_graph(params: dict[str, Any], seed: int):
    """Build one generator cell's graph from its parameters."""
    name = params.get("generator")
    n = int(params.get("n", 700))
    if name == "waxman":
        return waxman_graph(
            n, float(params.get("alpha", 0.1)), float(params.get("beta", 0.05)),
            seed,
        )
    if name == "ba":
        return barabasi_albert_graph(n, int(params.get("m", 2)), seed)
    if name == "er":
        return erdos_renyi_graph(n, float(params.get("p", 0.004)), seed)
    if name == "brite":
        return brite_graph(
            n, int(params.get("m", 2)), seed, mode=params.get("mode", "hybrid")
        )
    if name == "geogen":
        world = build_world(
            np.random.default_rng(seed),
            city_scale=float(params.get("city_scale", 0.12)),
        )
        config = GeoGenConfig(
            n_nodes=n,
            n_ases=int(params.get("n_ases", 40)),
            alpha=float(params.get("alpha", 1.4)),
            waxman_l_miles=float(params.get("waxman_l_miles", 120.0)),
            long_range_fraction=float(params.get("long_range_fraction", 0.1)),
            mean_degree=float(params.get("mean_degree", 2.6)),
        )
        return geogen_graph(world, config, seed), world
    raise SweepError(f"unknown generator {name!r} in sweep cell")


def _generator_metrics(payload: dict[str, Any]) -> tuple[dict[str, float], dict[str, str]]:
    """Characterise one generated topology against the paper's tests."""
    params = payload["params"]
    seed = payload["seed"]
    built = _make_generator_graph(params, seed)
    world = None
    if isinstance(built, tuple):
        annotated, world = built
        graph = annotated.graph
    else:
        graph = built
    region = _REGIONS[params.get("region", "US")]
    comparison = compare_generator(graph, region, _BIN_MILES[region.name])
    metrics: dict[str, float] = {
        "n_nodes": float(graph.n_nodes),
        "n_links": float(graph.n_edges),
        "mean_degree": comparison.mean_degree,
        "decay_slope": comparison.decay_slope,
    }
    slope = comparison.decay_slope
    if math.isfinite(slope) and slope < 0:
        metrics["waxman_l_miles"] = -1.0 / slope
    if world is None and params.get("generator") != "geogen":
        # Uniform-placement generators are still scored against the
        # population field so their (near-zero) alpha is on record.
        world = build_world(
            np.random.default_rng(seed),
            city_scale=float(params.get("city_scale", 0.12)),
        )
    if world is not None:
        metrics["alpha_exponent"] = _maybe(
            lambda: patch_regression(
                dataset_from_graph(graph), world.field, region
            ).fit.slope
        )
    dataset = dataset_from_graph(graph)
    return metrics, {dataset.label: dataset_digest(dataset)}


def _synthetic_metrics(payload: dict[str, Any]) -> tuple[dict[str, float], dict[str, str]]:
    """The benchmark workload: sleep, then report trivial metrics."""
    duration = float(payload["params"].get("duration_s", 0.1))
    time.sleep(duration)
    return {"duration_s": duration, "value": float(payload["seed"])}, {}


_KINDS = {
    "pipeline": _pipeline_metrics,
    "generator": _generator_metrics,
    "synthetic": _synthetic_metrics,
}


class _Heartbeat:
    """Best-effort worker heartbeats into the campaign's result store.

    A no-op unless the payload names a store; any store error is
    swallowed — observability must never fail the trial it observes.
    """

    def __init__(self, payload: dict[str, Any]) -> None:
        self._store_path = payload.get("store_path")
        self._campaign_id = payload.get("campaign_id")
        self._key = payload.get("key", "")
        self._attempt = int(payload.get("attempt", 0))

    def emit(self, event: str, **fields: Any) -> None:
        if not self._store_path or self._campaign_id is None:
            return
        try:
            from repro.sweep.store import ResultStore

            ResultStore(self._store_path).record_event(
                int(self._campaign_id),
                self._key,
                event,
                attempt=self._attempt,
                pid=os.getpid(),
                fields=fields or None,
            )
        except Exception:  # noqa: BLE001 - heartbeats are best-effort
            pass


def execute_trial(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one trial to completion inside the current process.

    Args:
        payload: a :meth:`TrialSpec.payload` work order.

    Returns:
        A dict with ``key``, ``metrics`` (finite values only),
        ``wall_s``, and ``report`` (a RunReport-compatible record
        carrying the trial's spans, metrics snapshot, and dataset
        content hashes).

    Raises:
        TrialTimeout: when the trial exceeds ``payload["timeout_s"]``.
        SweepError: for malformed payloads.
        Exception: whatever the trial's own code raises; the engine
            counts any exception as a failed attempt.
    """
    kind = payload.get("kind")
    try:
        runner = _KINDS[kind]
    except KeyError:
        raise SweepError(f"unknown trial kind {kind!r}") from None
    registry = MetricsRegistry()
    tracer = Tracer()
    heartbeat = _Heartbeat(payload)
    context = TraceContext.from_wire(payload.get("trace"))
    start = time.perf_counter()
    heartbeat.emit("start")
    try:
        with _trial_alarm(payload.get("timeout_s")):
            _apply_injection(
                payload.get("inject"), int(payload.get("attempt", 0))
            )
            with ExitStack() as stack:
                if context is not None:
                    stack.enter_context(use_trace_context(context))
                stack.enter_context(use_metrics(registry))
                stack.enter_context(use_tracer(tracer))
                with obs_span(
                    "sweep:trial",
                    key=payload["key"],
                    kind=kind,
                    seed=payload["seed"],
                    attempt=int(payload.get("attempt", 0)),
                ):
                    metrics, artifacts = runner(payload)
    except BaseException as exc:
        heartbeat.emit(
            "fail",
            error=f"{type(exc).__name__}: {exc}"[:500],
            wall_s=round(time.perf_counter() - start, 3),
        )
        raise
    wall_s = time.perf_counter() - start
    heartbeat.emit("finish", wall_s=round(wall_s, 3))
    report = RunReport(
        seed=int(payload["seed"]),
        config={
            "kind": kind,
            "key": payload["key"],
            "params": payload["params"],
        },
        spans=tracer.to_dicts(),
        metrics=registry.snapshot(),
        artifacts=artifacts,
        argv=[],
        created_unix=time.time(),
    )
    return {
        "key": payload["key"],
        "metrics": {
            name: value
            for name, value in metrics.items()
            if math.isfinite(value)
        },
        "wall_s": wall_s,
        "report": report.to_dict(),
    }
