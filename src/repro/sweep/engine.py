"""Fault-tolerant campaign execution over a process pool.

``run_campaign`` expands a :class:`~repro.sweep.spec.SweepSpec`,
registers the trials in the :class:`~repro.sweep.store.ResultStore`,
skips anything already ``done`` (resume), and drives the rest through a
``ProcessPoolExecutor`` with per-trial fault isolation:

- an attempt that **raises** (including an in-worker
  :class:`~repro.sweep.worker.TrialTimeout`) is retried after an
  exponential backoff until the spec's retry limit, then recorded as
  ``failed`` — the campaign keeps going;
- a **crashing** worker breaks the pool; the engine rebuilds it,
  charges every in-flight trial one failed attempt (the executor
  cannot say which one died), and re-queues them;
- a trial that blows past its **hard deadline** (the in-worker alarm
  plus a grace period) also forces a pool rebuild, since a worker stuck
  in C code can only be reclaimed by replacing its process;
- ``KeyboardInterrupt`` (SIGINT) shuts the pool down, marks the
  campaign ``interrupted``, and leaves the store in a state ``sweep
  resume`` picks up exactly where it stopped — completed trials are
  never re-run, so resumed aggregates match an uninterrupted campaign.

Cross-process tracing: the engine mints (or, on resume, re-reads) the
campaign's ``trace_id`` from the store and ships a serialised
:class:`~repro.obs.trace.TraceContext` inside every trial payload, so
the span trees workers return all join one campaign-wide trace that
:mod:`repro.sweep.tracing` stitches back together — including across a
crash + resume.  Payloads also carry the store path, which lets each
worker append ``start``/``finish``/``fail`` heartbeat events directly
(``sweep status --follow`` tails those).

Results stream into the store as they arrive, one short transaction
per trial, so a concurrent ``sweep status`` always sees live progress.
Engine-side counters (completed/failed/retried/crash recoveries) go
through :mod:`repro.obs` and are reported in the returned summary.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import SweepError
from repro.obs import get_logger, incr, new_trace_id, observe
from repro.sweep.spec import SweepSpec, TrialSpec
from repro.sweep.store import (
    CAMPAIGN_DONE,
    CAMPAIGN_INTERRUPTED,
    CAMPAIGN_RUNNING,
    TRIAL_DONE,
    ResultStore,
)
from repro.sweep.worker import execute_trial

_log = get_logger("sweep.engine")

#: Extra seconds past the in-worker alarm before the engine declares a
#: worker lost and rebuilds the pool.
HARD_DEADLINE_GRACE_S = 10.0

#: Poll interval of the dispatch loop.
_WAIT_S = 0.05


@dataclass
class CampaignSummary:
    """What one ``run_campaign`` invocation did.

    Attributes:
        name: campaign name.
        total: trials in the expanded grid.
        completed: trials that finished during *this* invocation.
        skipped: trials already done before it started (resume).
        failed: trials recorded as failed (attempts exhausted).
        retried: failed attempts that were re-queued.
        crash_recoveries: process-pool rebuilds (worker death/hang).
        interrupted: True when stopped by SIGINT or a stop condition.
        wall_s: wall seconds spent in the dispatch loop.
    """

    name: str
    total: int = 0
    completed: int = 0
    skipped: int = 0
    failed: int = 0
    retried: int = 0
    crash_recoveries: int = 0
    interrupted: bool = False
    wall_s: float = 0.0

    @property
    def trials_per_min(self) -> float:
        """Completed-trial throughput of this invocation."""
        if self.wall_s <= 0:
            return 0.0
        return 60.0 * self.completed / self.wall_s


@dataclass
class _InFlight:
    trial: TrialSpec
    attempt: int
    deadline: float | None


@dataclass
class _Queues:
    ready: deque = field(default_factory=deque)  # (trial, attempt)
    retry: list = field(default_factory=list)  # (eligible_monotonic, trial, attempt)


def campaign_parent_span_id(trace_id: str) -> str:
    """The synthetic campaign-root span ID every trial hangs under.

    Derived from the trace ID (its first 16 hex chars) rather than
    minted fresh, so a resumed campaign's trials point at the *same*
    parent as the original run's — one stitched tree across
    interruptions.
    """
    return trace_id[:16]


@dataclass(frozen=True)
class _Wire:
    """Per-campaign context merged into every trial payload."""

    trace_id: str
    store_path: str
    campaign_id: int


def _payload(
    spec: SweepSpec, trial: TrialSpec, attempt: int, wire: _Wire | None = None
) -> dict[str, Any]:
    payload = trial.payload(attempt, spec.trial_timeout_s)
    payload["cache_dir"] = spec.cache_dir
    if wire is not None:
        payload["trace"] = {
            "trace_id": wire.trace_id,
            "span_id": campaign_parent_span_id(wire.trace_id),
            "sampled": True,
        }
        payload["store_path"] = wire.store_path
        payload["campaign_id"] = wire.campaign_id
    return payload


class _Pool:
    """A rebuildable ProcessPoolExecutor wrapper."""

    def __init__(self, workers: int, start_method: str | None) -> None:
        self.workers = workers
        self.context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else None
        )
        self.executor = self._make()

    def _make(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self.context
        )

    def submit(self, payload: dict[str, Any]) -> Future:
        return self.executor.submit(execute_trial, payload)

    def rebuild(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.executor = self._make()

    def shutdown(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


def run_campaign(
    spec: SweepSpec,
    store: ResultStore | str | Path,
    *,
    workers: int = 1,
    start_method: str | None = None,
    stop_after: int | None = None,
    on_trial: Callable[[TrialSpec, str], None] | None = None,
) -> CampaignSummary:
    """Run (or resume) a campaign until its grid is exhausted.

    Args:
        spec: the campaign description.
        store: a :class:`ResultStore` or a database path.
        workers: process-pool size; ``0`` runs trials in-process (no
            fault isolation — debugging only).
        start_method: multiprocessing start method (``"fork"`` /
            ``"spawn"`` / ``"forkserver"``); ``None`` uses the platform
            default.
        stop_after: stop (as interrupted) once this many trials have
            completed in this invocation — the programmatic stand-in
            for SIGINT used by tests and the smoke script.
        on_trial: progress hook called with ``(trial, status)`` after
            every terminal trial state; exceptions it raises (including
            ``KeyboardInterrupt``) interrupt the campaign cleanly.

    Returns:
        A :class:`CampaignSummary`; ``interrupted`` is True when the
        grid is not exhausted.

    Raises:
        SweepError: for an invalid spec/store combination (e.g. the
            campaign exists with a different spec).
    """
    if workers < 0:
        raise SweepError("workers must be >= 0")
    if isinstance(store, (str, Path)):
        store = ResultStore(store)
    campaign_id = store.ensure_campaign(spec)
    trace_id = store.ensure_trace_id(campaign_id, new_trace_id())
    wire = _Wire(
        trace_id=trace_id,
        store_path=str(store.path),
        campaign_id=campaign_id,
    )
    trials = spec.expand()
    store.register_trials(campaign_id, trials)
    store.reset_incomplete(campaign_id)
    statuses = store.statuses(campaign_id)

    summary = CampaignSummary(name=spec.name, total=len(trials))
    queues = _Queues()
    for trial in trials:
        if statuses.get(trial.key) == TRIAL_DONE:
            summary.skipped += 1
        else:
            queues.ready.append((trial, 0))
    if not queues.ready:
        store.set_campaign_status(campaign_id, CAMPAIGN_DONE)
        return summary

    store.set_campaign_status(campaign_id, CAMPAIGN_RUNNING)
    start = time.perf_counter()
    try:
        if workers == 0:
            _run_inline(spec, store, campaign_id, queues, summary, stop_after,
                        on_trial, wire)
        else:
            _run_pooled(spec, store, campaign_id, queues, summary, workers,
                        start_method, stop_after, on_trial, wire)
    except KeyboardInterrupt:
        summary.interrupted = True
    summary.wall_s = time.perf_counter() - start
    store.set_campaign_status(
        campaign_id,
        CAMPAIGN_INTERRUPTED if summary.interrupted else CAMPAIGN_DONE,
    )
    return summary


def _finish(
    summary: CampaignSummary,
    store: ResultStore,
    campaign_id: int,
    trial: TrialSpec,
    result: dict[str, Any] | None,
    error: str | None,
    on_trial: Callable[[TrialSpec, str], None] | None,
) -> None:
    """Record one terminal trial state and fire the progress hook."""
    import json

    if result is not None:
        store.record_success(
            campaign_id,
            trial.key,
            metrics=result["metrics"],
            wall_s=result["wall_s"],
            report_json=json.dumps(result["report"]),
        )
        summary.completed += 1
        incr("sweep.trials.completed")
        observe("sweep.trial.wall_s", result["wall_s"])
        status = "done"
    else:
        store.record_failure(campaign_id, trial.key, error or "unknown error")
        summary.failed += 1
        incr("sweep.trials.failed")
        status = "failed"
        _log.warning(
            "trial failed permanently",
            extra={"key": trial.key, "error": (error or "")[:200]},
        )
    if on_trial is not None:
        on_trial(trial, status)


def _retry_or_fail(
    spec: SweepSpec,
    store: ResultStore,
    campaign_id: int,
    queues: _Queues,
    summary: CampaignSummary,
    trial: TrialSpec,
    attempt: int,
    error: str,
    on_trial: Callable[[TrialSpec, str], None] | None,
) -> None:
    """Back off and re-queue a failed attempt, or record final failure."""
    if attempt < spec.max_retries:
        delay = spec.retry_backoff_s * (2.0**attempt)
        queues.retry.append((time.monotonic() + delay, trial, attempt + 1))
        summary.retried += 1
        incr("sweep.trials.retried")
        _log.info(
            "trial attempt failed; retrying",
            extra={"key": trial.key, "attempt": attempt, "error": error[:200]},
        )
    else:
        _finish(summary, store, campaign_id, trial, None, error, on_trial)


def _promote_retries(queues: _Queues) -> float | None:
    """Move eligible retries to the ready queue; return next wake time."""
    now = time.monotonic()
    still: list = []
    soonest: float | None = None
    for eligible, trial, attempt in queues.retry:
        if eligible <= now:
            queues.ready.append((trial, attempt))
        else:
            still.append((eligible, trial, attempt))
            soonest = eligible if soonest is None else min(soonest, eligible)
    queues.retry = still
    return soonest


def _run_inline(
    spec: SweepSpec,
    store: ResultStore,
    campaign_id: int,
    queues: _Queues,
    summary: CampaignSummary,
    stop_after: int | None,
    on_trial: Callable[[TrialSpec, str], None] | None,
    wire: _Wire | None = None,
) -> None:
    """workers=0: run every trial in this process (debugging mode)."""
    while queues.ready or queues.retry:
        if stop_after is not None and summary.completed >= stop_after:
            summary.interrupted = True
            return
        soonest = _promote_retries(queues)
        if not queues.ready:
            time.sleep(max(0.0, (soonest or time.monotonic()) - time.monotonic()))
            continue
        trial, attempt = queues.ready.popleft()
        store.mark_running(campaign_id, trial.key, attempt)
        try:
            result = execute_trial(_payload(spec, trial, attempt, wire))
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            _retry_or_fail(spec, store, campaign_id, queues, summary, trial,
                           attempt, f"{type(exc).__name__}: {exc}", on_trial)
            continue
        _finish(summary, store, campaign_id, trial, result, None, on_trial)


def _run_pooled(
    spec: SweepSpec,
    store: ResultStore,
    campaign_id: int,
    queues: _Queues,
    summary: CampaignSummary,
    workers: int,
    start_method: str | None,
    stop_after: int | None,
    on_trial: Callable[[TrialSpec, str], None] | None,
    wire: _Wire | None = None,
) -> None:
    """The process-pool dispatch loop with crash/hang recovery."""
    pool = _Pool(workers, start_method)
    in_flight: dict[Future, _InFlight] = {}

    def requeue_in_flight(charge_attempt: bool) -> None:
        for state in in_flight.values():
            if charge_attempt:
                _retry_or_fail(
                    spec, store, campaign_id, queues, summary, state.trial,
                    state.attempt, "worker process died (pool broken)", on_trial,
                )
            else:
                queues.ready.append((state.trial, state.attempt))
        in_flight.clear()

    try:
        while queues.ready or queues.retry or in_flight:
            if stop_after is not None and summary.completed >= stop_after:
                summary.interrupted = True
                return
            _promote_retries(queues)
            while queues.ready and len(in_flight) < workers:
                trial, attempt = queues.ready.popleft()
                store.mark_running(campaign_id, trial.key, attempt)
                deadline = (
                    time.monotonic() + spec.trial_timeout_s + HARD_DEADLINE_GRACE_S
                    if spec.trial_timeout_s is not None
                    else None
                )
                future = pool.submit(_payload(spec, trial, attempt, wire))
                in_flight[future] = _InFlight(trial, attempt, deadline)
            if not in_flight:
                time.sleep(_WAIT_S)
                continue
            done, _ = wait(
                set(in_flight), timeout=_WAIT_S, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                state = in_flight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    # The dying worker poisons every in-flight future;
                    # charge them all one attempt and rebuild.
                    _retry_or_fail(
                        spec, store, campaign_id, queues, summary, state.trial,
                        state.attempt, "worker process died (pool broken)",
                        on_trial,
                    )
                    broken = True
                except Exception as exc:
                    _retry_or_fail(
                        spec, store, campaign_id, queues, summary, state.trial,
                        state.attempt, f"{type(exc).__name__}: {exc}", on_trial,
                    )
                else:
                    _finish(summary, store, campaign_id, state.trial, result,
                            None, on_trial)
            if broken:
                requeue_in_flight(charge_attempt=True)
                pool.rebuild()
                summary.crash_recoveries += 1
                incr("sweep.pool.rebuilds")
                continue
            now = time.monotonic()
            overdue = [
                future
                for future, state in in_flight.items()
                if state.deadline is not None and now > state.deadline
            ]
            if overdue:
                # A worker is stuck past the in-worker alarm: only a
                # pool replacement reclaims its process.  Non-overdue
                # in-flight trials are re-queued without a charged
                # attempt — they did nothing wrong.
                for future in overdue:
                    state = in_flight.pop(future)
                    _retry_or_fail(
                        spec, store, campaign_id, queues, summary, state.trial,
                        state.attempt, "worker unresponsive past hard deadline",
                        on_trial,
                    )
                requeue_in_flight(charge_attempt=False)
                pool.rebuild()
                summary.crash_recoveries += 1
                incr("sweep.pool.rebuilds")
    finally:
        pool.shutdown()
