"""Fault-tolerant multi-process experiment campaigns.

The sweep engine turns a declarative :class:`SweepSpec` — a grid over
seeds x scenario scales x geolocation tools x generator configurations
— into trials executed on a process pool with per-trial fault
isolation, persisted incrementally into a SQLite
:class:`ResultStore` so interrupted campaigns resume without re-running
completed work, and aggregated into per-cell bootstrap confidence
intervals plus a generator-scoring pass.

See ``README.md`` ("Sweeps") for the spec format and CLI usage.
"""

from repro.sweep.aggregate import (
    CellSummary,
    MetricSummary,
    aggregate_campaign,
    bootstrap_ci,
    build_sweep_report,
    diff_sweep_reports,
    load_sweep_report,
    render_sweep_report,
    score_generators,
    validate_sweep_report,
    write_sweep_report,
)
from repro.sweep.engine import CampaignSummary, run_campaign
from repro.sweep.spec import (
    INJECT_MODES,
    SCALES,
    SweepSpec,
    TrialSpec,
    build_scenario,
    load_spec,
)
from repro.sweep.store import ResultStore, TrialRow
from repro.sweep.tracing import render_trace_tree, stitch_campaign_trace
from repro.sweep.worker import InjectedFailure, TrialTimeout, execute_trial

__all__ = [
    "CampaignSummary",
    "CellSummary",
    "INJECT_MODES",
    "InjectedFailure",
    "MetricSummary",
    "ResultStore",
    "SCALES",
    "SweepSpec",
    "TrialRow",
    "TrialSpec",
    "TrialTimeout",
    "aggregate_campaign",
    "bootstrap_ci",
    "build_scenario",
    "build_sweep_report",
    "diff_sweep_reports",
    "execute_trial",
    "load_spec",
    "load_sweep_report",
    "render_sweep_report",
    "render_trace_tree",
    "run_campaign",
    "stitch_campaign_trace",
    "score_generators",
    "validate_sweep_report",
    "write_sweep_report",
]
