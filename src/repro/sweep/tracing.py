"""Stitching per-trial span trees into one campaign-wide trace.

Every trial's worker returns a RunReport whose spans carry the
campaign's ``trace_id`` (shipped in the payload as a
:class:`~repro.obs.trace.TraceContext`) and name the campaign root —
``campaign_parent_span_id(trace_id)``, derived deterministically from
the trace ID — as their parent.  Because the trace ID is persisted on
the campaign row, trials run by ``sweep resume`` after a crash join
the *same* trace, so :func:`stitch_campaign_trace` reconstructs one
tree spanning every process that ever worked on the campaign.

The tree is plain span dicts (the :meth:`~repro.obs.trace.Span.to_dict`
shape) with a synthetic ``campaign:<name>`` root, so report tooling
that understands span forests needs nothing new.  ``repro sweep trace``
renders it with :func:`render_trace_tree`.
"""

from __future__ import annotations

from typing import Any

from repro.sweep.engine import campaign_parent_span_id
from repro.sweep.store import ResultStore


def stitch_campaign_trace(
    store: ResultStore, name: str
) -> dict[str, Any]:
    """Assemble the campaign-wide span tree from persisted trial reports.

    Args:
        store: the campaign's result store.
        name: campaign name.

    Returns:
        A span dict for the synthetic ``campaign:<name>`` root whose
        children are the trial root spans, ordered by start time.
        Spans from a different trace (pre-telemetry campaigns replayed
        into the same store) are kept but flagged in the root's
        attributes as ``foreign_spans``.

    Raises:
        SweepError: when the campaign does not exist.
    """
    info = store.campaign_info(name)
    trace_id = str(info["trace_id"])
    root_span_id = campaign_parent_span_id(trace_id) if trace_id else ""
    children: list[dict[str, Any]] = []
    foreign = 0
    for key, report in store.trial_reports(int(info["id"])):
        for span in report.get("spans", []):
            child = dict(span)
            child.setdefault("attributes", {})
            child["attributes"].setdefault("key", key)
            if trace_id and child.get("trace_id") != trace_id:
                foreign += 1
            children.append(child)
    children.sort(key=lambda s: (s.get("start_unix", 0.0), s.get("name", "")))
    starts = [c["start_unix"] for c in children if c.get("start_unix")]
    ends = [
        c["start_unix"] + c.get("wall_s", 0.0)
        for c in children
        if c.get("start_unix")
    ]
    elapsed = (max(ends) - min(starts)) if starts else 0.0
    return {
        "name": f"campaign:{name}",
        "attributes": {
            "campaign": name,
            "status": info["status"],
            "trials": len(children),
            "foreign_spans": foreign,
        },
        "start_s": 0.0,
        "end_s": elapsed,
        "wall_s": elapsed,
        "start_unix": min(starts) if starts else 0.0,
        "thread": "",
        "span_id": root_span_id,
        "trace_id": trace_id,
        "parent_span_id": "",
        "children": children,
    }


def _render_span(
    span: dict[str, Any], indent: int, lines: list[str]
) -> None:
    attributes = span.get("attributes", {})
    decor = ""
    if "key" in attributes and indent == 1:
        decor = f"  key={attributes['key']}"
        if "attempt" in attributes:
            decor += f" attempt={attributes['attempt']}"
    lines.append(
        f"{'  ' * indent}{span.get('name', '?')}"
        f"  {span.get('wall_s', 0.0):.3f}s{decor}"
    )
    for child in span.get("children", []):
        _render_span(child, indent + 1, lines)


def render_trace_tree(tree: dict[str, Any]) -> str:
    """A human-readable rendering of a stitched campaign trace."""
    attributes = tree.get("attributes", {})
    lines = [
        f"{tree.get('name', '?')}  trace={tree.get('trace_id', '')[:16]}"
        f"  status={attributes.get('status', '?')}"
        f"  trials={attributes.get('trials', 0)}"
        f"  elapsed={tree.get('wall_s', 0.0):.3f}s"
    ]
    for child in tree.get("children", []):
        _render_span(child, 1, lines)
    return "\n".join(lines)


def distinct_pids(events: list[dict[str, Any]]) -> set[int]:
    """Worker PIDs that produced a list of heartbeat events."""
    return {int(e["pid"]) for e in events if e.get("pid")}
