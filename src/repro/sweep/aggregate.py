"""Campaign aggregation: per-cell summaries, bootstrap CIs, scoring.

Completed trials are grouped into *cells* (identical kind + parameters,
seed excluded) and every metric is summarised across the cell's seeds
with a seeded percentile-bootstrap confidence interval on the mean.
The paper's headline statistics — the superlinear population exponent
alpha, the Waxman decay constant L, the distance-sensitive link
fraction, and the intradomain link share — therefore come out of a
campaign with uncertainty attached rather than as single numbers.

A second pass scores generator cells against the campaign's own
empirical pipeline cells: each Waxman / BA / BRITE / GeoGen
configuration is ranked by how close its alpha exponent and implied
Waxman L land to the pipeline ensemble's means, extending the
single-graph ``compare_generator`` test to whole configuration grids.

The resulting *sweep report* is a JSON document
(``schema: repro-sweep-report`` v1) that ``report diff`` can compare
across campaigns: a metric whose mean moved by more than a threshold
multiple of the bootstrap half-width counts as a regression, reusing
the :class:`~repro.obs.report.ReportDiff` machinery.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.errors import SweepError
from repro.obs.report import ReportDiff
from repro.sweep.spec import canonical_json
from repro.sweep.store import TRIAL_DONE, TRIAL_FAILED, ResultStore

SWEEP_REPORT_SCHEMA = "repro-sweep-report"
SWEEP_REPORT_VERSION = 1

#: Headline metrics surfaced first by the renderer.
HEADLINE_METRICS = (
    "alpha_exponent",
    "waxman_l_miles",
    "sensitive_fraction",
    "intradomain_share",
)

#: Score charged per missing comparison component when ranking
#: generator configurations (a config that cannot be compared at all
#: sorts last, at 2 components x this penalty).
MISSING_COMPONENT_PENALTY = 2.0


@dataclass(frozen=True)
class MetricSummary:
    """One metric across a cell's completed trials.

    Attributes:
        mean: sample mean.
        std: sample standard deviation (ddof=1; 0 for one sample).
        lo: lower bootstrap percentile bound of the mean.
        hi: upper bootstrap percentile bound of the mean.
        n: samples (trials that produced the metric).
    """

    mean: float
    std: float
    lo: float
    hi: float
    n: int

    @property
    def half_width(self) -> float:
        """Half the bootstrap interval — the diff tolerance unit."""
        return (self.hi - self.lo) / 2.0


@dataclass(frozen=True)
class CellSummary:
    """All trials of one parameter cell, summarised.

    Attributes:
        cell: kind + parameters (the grouping key, seed excluded).
        kind: trial kind of the cell.
        n_trials: trials registered for the cell.
        n_done: completed trials.
        n_failed: permanently failed trials.
        metrics: metric name -> :class:`MetricSummary`.
    """

    cell: dict[str, Any]
    kind: str
    n_trials: int
    n_done: int
    n_failed: int
    metrics: dict[str, MetricSummary]

    @property
    def label(self) -> str:
        """Compact human-readable cell identity."""
        parts = [
            f"{k}={v}" for k, v in sorted(self.cell.items()) if k != "kind"
        ]
        return f"{self.kind}({', '.join(parts)})"


def bootstrap_ci(
    values: Any,
    *,
    alpha: float = 0.05,
    n_boot: int = 400,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap interval for the mean.

    Args:
        values: the sample (1-D, finite).
        alpha: two-sided miss probability (0.05 -> a 95% interval).
        n_boot: bootstrap resamples.
        seed: RNG seed — the interval is deterministic per campaign.

    Returns:
        ``(lo, hi)``; a single-point sample collapses to that point.

    Raises:
        SweepError: on an empty sample or invalid alpha.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise SweepError("bootstrap_ci needs at least one value")
    if not 0.0 < alpha < 1.0:
        raise SweepError("alpha must be in (0, 1)")
    if data.size == 1:
        return float(data[0]), float(data[0])
    rng = np.random.default_rng(seed)
    samples = rng.choice(data, size=(n_boot, data.size), replace=True)
    means = samples.mean(axis=1)
    lo, hi = np.quantile(means, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)


def summarise_metric(
    values: Any, *, n_boot: int = 400, seed: int = 0
) -> MetricSummary:
    """Mean / std / bootstrap interval of one metric sample."""
    data = np.asarray(values, dtype=float)
    data = data[np.isfinite(data)]
    if data.size == 0:
        raise SweepError("summarise_metric needs at least one finite value")
    lo, hi = bootstrap_ci(data, n_boot=n_boot, seed=seed)
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    return MetricSummary(
        mean=float(data.mean()), std=std, lo=lo, hi=hi, n=int(data.size)
    )


def aggregate_campaign(
    store: ResultStore, name: str, *, n_boot: int = 400
) -> list[CellSummary]:
    """Group a campaign's trials into cells and summarise every metric.

    The bootstrap seed of each interval is derived from the cell and
    metric name, so aggregate output is deterministic and — crucially
    for the resume test — independent of trial completion order.
    """
    campaign_id = store.campaign_id(name)
    groups: dict[str, list] = {}
    for row in store.trial_rows(campaign_id):
        groups.setdefault(canonical_json(row.cell), []).append(row)
    cells: list[CellSummary] = []
    for cell_json in sorted(groups):
        rows = groups[cell_json]
        cell = json.loads(cell_json)
        done = [r for r in rows if r.status == TRIAL_DONE]
        metric_names = sorted({m for r in done for m in r.metrics})
        metrics: dict[str, MetricSummary] = {}
        for metric in metric_names:
            values = [
                r.metrics[metric] for r in done if metric in r.metrics
            ]
            boot_seed = int.from_bytes(
                (cell_json + metric).encode("utf-8")[-4:], "little"
            )
            metrics[metric] = summarise_metric(
                values, n_boot=n_boot, seed=boot_seed
            )
        cells.append(
            CellSummary(
                cell=cell,
                kind=str(cell.get("kind", rows[0].kind)),
                n_trials=len(rows),
                n_done=len(done),
                n_failed=sum(1 for r in rows if r.status == TRIAL_FAILED),
                metrics=metrics,
            )
        )
    return cells


# -- generator scoring --------------------------------------------------------


def score_generators(cells: list[CellSummary]) -> list[dict[str, Any]]:
    """Rank generator cells against the campaign's pipeline ensemble.

    The empirical reference is the mean over pipeline cells of the
    alpha exponent and fitted Waxman L; each generator configuration's
    score is the summed relative distance of its own alpha and implied
    L from that reference (lower is better).  A configuration missing a
    component is charged :data:`MISSING_COMPONENT_PENALTY` for it, so
    un-comparable configs rank last instead of disappearing.

    Returns an empty list when the campaign has no pipeline reference
    or no generator cells.
    """
    reference: dict[str, float] = {}
    for metric in ("alpha_exponent", "waxman_l_miles"):
        values = [
            c.metrics[metric].mean
            for c in cells
            if c.kind == "pipeline" and metric in c.metrics
        ]
        if values:
            reference[metric] = float(np.mean(values))
    generator_cells = [c for c in cells if c.kind == "generator"]
    if not reference or not generator_cells:
        return []
    scored = []
    for cell in generator_cells:
        components: dict[str, float] = {}
        for metric, target in reference.items():
            summary = cell.metrics.get(metric)
            if summary is None or not math.isfinite(summary.mean):
                components[metric] = MISSING_COMPONENT_PENALTY
            else:
                scale = max(abs(target), 1e-9)
                components[metric] = abs(summary.mean - target) / scale
        scored.append(
            {
                "cell": cell.cell,
                "label": cell.label,
                "score": float(sum(components.values())),
                "components": components,
                "reference": reference,
            }
        )
    scored.sort(key=lambda entry: entry["score"])
    for rank, entry in enumerate(scored, start=1):
        entry["rank"] = rank
    return scored


# -- the sweep report document ------------------------------------------------


def build_sweep_report(
    store: ResultStore, name: str, *, n_boot: int = 400
) -> dict[str, Any]:
    """Assemble the JSON sweep report for one campaign."""
    campaign_id = store.campaign_id(name)
    spec = store.load_spec(name)
    cells = aggregate_campaign(store, name, n_boot=n_boot)
    return {
        "schema": SWEEP_REPORT_SCHEMA,
        "version": SWEEP_REPORT_VERSION,
        "campaign": name,
        "created_unix": time.time(),
        "spec_digest": spec.digest(),
        "counts": store.counts(campaign_id),
        "cells": [
            {
                "cell": c.cell,
                "label": c.label,
                "kind": c.kind,
                "n_trials": c.n_trials,
                "n_done": c.n_done,
                "n_failed": c.n_failed,
                "metrics": {
                    metric: {
                        "mean": s.mean,
                        "std": s.std,
                        "lo": s.lo,
                        "hi": s.hi,
                        "n": s.n,
                    }
                    for metric, s in sorted(c.metrics.items())
                },
            }
            for c in cells
        ],
        "generator_scores": score_generators(cells),
    }


def validate_sweep_report(payload: Any) -> dict[str, Any]:
    """Check a parsed sweep report document.

    Raises:
        SweepError: when the document is not a sweep report.
    """
    if not isinstance(payload, Mapping):
        raise SweepError("sweep report must be a JSON object")
    if payload.get("schema") != SWEEP_REPORT_SCHEMA:
        raise SweepError(
            f"not a sweep report (schema {payload.get('schema')!r})"
        )
    if payload.get("version") != SWEEP_REPORT_VERSION:
        raise SweepError(
            f"unsupported sweep report version {payload.get('version')!r}"
        )
    for field_name in ("campaign", "counts", "cells"):
        if field_name not in payload:
            raise SweepError(f"sweep report is missing {field_name!r}")
    if not isinstance(payload["cells"], list):
        raise SweepError("sweep report cells must be a list")
    return dict(payload)


def write_sweep_report(payload: Mapping[str, Any], path: str | Path) -> Path:
    """Write a sweep report document to disk."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def load_sweep_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a sweep report document.

    Raises:
        SweepError: on unreadable files, bad JSON, or wrong schema.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SweepError(f"cannot read sweep report {path}: {exc}")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SweepError(f"sweep report {path} is not valid JSON: {exc}")
    return validate_sweep_report(payload)


def render_sweep_report(payload: Mapping[str, Any]) -> str:
    """A terminal-friendly rendering of a sweep report."""
    lines = [f"campaign {payload['campaign']}"]
    counts = payload.get("counts", {})
    lines.append(
        "  trials: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    for cell in payload.get("cells", []):
        lines.append(
            f"  {cell['label']}  "
            f"[done {cell['n_done']}/{cell['n_trials']}"
            + (f", failed {cell['n_failed']}" if cell["n_failed"] else "")
            + "]"
        )
        metrics = cell.get("metrics", {})
        ordered = [m for m in HEADLINE_METRICS if m in metrics] + [
            m for m in sorted(metrics) if m not in HEADLINE_METRICS
        ]
        for metric in ordered:
            s = metrics[metric]
            lines.append(
                f"    {metric:<20} {s['mean']:>10.4f}  "
                f"ci95 [{s['lo']:.4f}, {s['hi']:.4f}]  n={s['n']}"
            )
    scores = payload.get("generator_scores", [])
    if scores:
        lines.append("  generator ranking (distance to empirical cells):")
        for entry in scores:
            lines.append(
                f"    #{entry['rank']} {entry['label']}  "
                f"score={entry['score']:.3f}"
            )
    return "\n".join(lines)


def diff_sweep_reports(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    threshold: float = 1.0,
) -> ReportDiff:
    """Compare two sweep reports cell by cell.

    A metric *regresses* when its mean moved by more than ``threshold``
    times the wider of the two bootstrap half-widths — i.e. the shift
    is large relative to the campaigns' own seed-to-seed uncertainty.
    Appearing/disappearing cells or metrics, and changed trial counts,
    are drift.

    Raises:
        SweepError: on a non-positive threshold.
    """
    if threshold <= 0:
        raise SweepError("threshold must be positive")
    regressions: list[str] = []
    drifts: list[str] = []
    notes: list[str] = []

    def cells_by_key(payload: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
        return {
            canonical_json(cell["cell"]): cell
            for cell in payload.get("cells", [])
        }

    old_cells = cells_by_key(old)
    new_cells = cells_by_key(new)
    for key in sorted(old_cells.keys() - new_cells.keys()):
        drifts.append(f"cell {old_cells[key]['label']!r} disappeared")
    for key in sorted(new_cells.keys() - old_cells.keys()):
        drifts.append(f"cell {new_cells[key]['label']!r} appeared")
    shifts = 0
    for key in sorted(old_cells.keys() & new_cells.keys()):
        cell_old, cell_new = old_cells[key], new_cells[key]
        label = cell_new["label"]
        if cell_old["n_done"] != cell_new["n_done"]:
            drifts.append(
                f"cell {label!r} completed trials "
                f"{cell_old['n_done']} -> {cell_new['n_done']}"
            )
        metrics_old = cell_old.get("metrics", {})
        metrics_new = cell_new.get("metrics", {})
        for metric in sorted(metrics_old.keys() - metrics_new.keys()):
            drifts.append(f"cell {label!r} lost metric {metric!r}")
        for metric in sorted(metrics_new.keys() - metrics_old.keys()):
            drifts.append(f"cell {label!r} gained metric {metric!r}")
        for metric in sorted(metrics_old.keys() & metrics_new.keys()):
            s_old, s_new = metrics_old[metric], metrics_new[metric]
            shift = abs(s_new["mean"] - s_old["mean"])
            half_old = (s_old["hi"] - s_old["lo"]) / 2.0
            half_new = (s_new["hi"] - s_new["lo"]) / 2.0
            tolerance = threshold * max(half_old, half_new, 1e-12)
            if shift > tolerance:
                shifts += 1
                regressions.append(
                    f"cell {label!r} metric {metric!r} shifted "
                    f"{s_old['mean']:.4f} -> {s_new['mean']:.4f} "
                    f"(|shift| {shift:.4f} > {tolerance:.4f} "
                    f"= {threshold:g} x CI half-width)"
                )
    notes.append(
        f"compared {len(old_cells.keys() & new_cells.keys())} shared cells; "
        f"{shifts} interval-shift regression(s)"
    )
    return ReportDiff(
        regressions=tuple(regressions),
        drifts=tuple(drifts),
        notes=tuple(notes),
    )
