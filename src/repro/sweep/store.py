"""The persistent campaign result store (SQLite, WAL mode).

One database file holds any number of campaigns.  Layout:

- ``campaigns`` — one row per campaign: the full spec JSON, its content
  digest (resume refuses a changed spec), and a coarse status;
- ``trials`` — one row per expanded trial, ``UNIQUE(campaign_id, key)``
  so re-registration on resume can never duplicate work;
- ``trial_metrics`` — one row per (trial, metric name), replaced on
  re-run so a retried trial leaves exactly one value.

The store opens in WAL mode with a busy timeout, so a ``sweep status``
reader in another process can poll live progress while the engine
writes.  Within the engine only the parent process writes — workers
ship results back over the process pool — which keeps every write a
short single-connection transaction.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.errors import SweepError
from repro.sweep.spec import SweepSpec, TrialSpec, canonical_json

#: Trial lifecycle states.
TRIAL_PENDING = "pending"
TRIAL_RUNNING = "running"
TRIAL_DONE = "done"
TRIAL_FAILED = "failed"

#: Campaign lifecycle states.
CAMPAIGN_CREATED = "created"
CAMPAIGN_RUNNING = "running"
CAMPAIGN_DONE = "done"
CAMPAIGN_INTERRUPTED = "interrupted"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    spec_json TEXT NOT NULL,
    spec_digest TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'created',
    created_unix REAL NOT NULL,
    updated_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    key TEXT NOT NULL,
    kind TEXT NOT NULL,
    seed INTEGER NOT NULL,
    cell_json TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    wall_s REAL,
    report_json TEXT,
    started_unix REAL,
    finished_unix REAL,
    UNIQUE (campaign_id, key)
);
CREATE TABLE IF NOT EXISTS trial_metrics (
    trial_id INTEGER NOT NULL REFERENCES trials(id),
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (trial_id, name)
);
CREATE INDEX IF NOT EXISTS idx_trials_campaign_status
    ON trials (campaign_id, status);
"""


@dataclass(frozen=True)
class TrialRow:
    """One persisted trial, as the aggregation layer consumes it.

    Attributes:
        key: the trial key.
        kind: trial kind.
        seed: trial seed.
        cell: the aggregation cell (kind + params).
        status: lifecycle state.
        attempts: execution attempts so far.
        error: last failure message, if any.
        wall_s: execution wall seconds of the successful attempt.
        metrics: metric name -> value (empty unless done).
    """

    key: str
    kind: str
    seed: int
    cell: dict[str, Any]
    status: str
    attempts: int
    error: str | None
    wall_s: float | None
    metrics: dict[str, float]


class ResultStore:
    """SQLite-backed campaign/trial/metric persistence.

    Safe for one writer plus concurrent readers in other processes
    (WAL); every method is a self-contained transaction.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._connect() as conn:
                conn.executescript(_SCHEMA)
        except (OSError, sqlite3.Error) as exc:
            raise SweepError(f"cannot open result store {self.path}: {exc}")

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=10000")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- campaigns ------------------------------------------------------------

    def ensure_campaign(self, spec: SweepSpec) -> int:
        """Create the campaign, or return the existing one for resume.

        Raises:
            SweepError: when a campaign of this name exists with a
                *different* spec (resuming it would mix incompatible
                trial grids).
        """
        digest = spec.digest()
        now = time.time()
        with self._connect() as conn:
            row = conn.execute(
                "SELECT id, spec_digest FROM campaigns WHERE name = ?",
                (spec.name,),
            ).fetchone()
            if row is not None:
                if row[1] != digest:
                    raise SweepError(
                        f"campaign {spec.name!r} exists with a different "
                        f"spec (digest {row[1][:12]} != {digest[:12]}); "
                        "rename the campaign or use a fresh store"
                    )
                return int(row[0])
            cursor = conn.execute(
                "INSERT INTO campaigns "
                "(name, spec_json, spec_digest, status, created_unix, "
                " updated_unix) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    spec.name,
                    canonical_json(spec.to_dict()),
                    digest,
                    CAMPAIGN_CREATED,
                    now,
                    now,
                ),
            )
            return int(cursor.lastrowid)

    def campaign_id(self, name: str) -> int:
        """Look a campaign up by name.

        Raises:
            SweepError: when absent.
        """
        with self._connect() as conn:
            row = conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            raise SweepError(f"no campaign {name!r} in {self.path}")
        return int(row[0])

    def load_spec(self, name: str) -> SweepSpec:
        """The spec a campaign was created from (for ``sweep resume``)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT spec_json FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            raise SweepError(f"no campaign {name!r} in {self.path}")
        return SweepSpec.from_dict(json.loads(row[0]))

    def set_campaign_status(self, campaign_id: int, status: str) -> None:
        """Move a campaign through its lifecycle."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE campaigns SET status = ?, updated_unix = ? WHERE id = ?",
                (status, time.time(), campaign_id),
            )

    def list_campaigns(self) -> list[dict[str, Any]]:
        """Name, status, and trial counts of every campaign in the store."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT id, name, status, created_unix FROM campaigns "
                "ORDER BY created_unix"
            ).fetchall()
            out = []
            for cid, name, status, created in rows:
                counts = dict(
                    conn.execute(
                        "SELECT status, COUNT(*) FROM trials "
                        "WHERE campaign_id = ? GROUP BY status",
                        (cid,),
                    ).fetchall()
                )
                out.append(
                    {
                        "name": name,
                        "status": status,
                        "created_unix": created,
                        "trials": counts,
                    }
                )
        return out

    # -- trials ---------------------------------------------------------------

    def register_trials(
        self, campaign_id: int, trials: list[TrialSpec]
    ) -> None:
        """Insert trial rows, ignoring ones already present (resume)."""
        with self._connect() as conn:
            conn.executemany(
                "INSERT OR IGNORE INTO trials "
                "(campaign_id, key, kind, seed, cell_json) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (
                        campaign_id,
                        t.key,
                        t.kind,
                        t.seed,
                        canonical_json(t.cell),
                    )
                    for t in trials
                ],
            )

    def statuses(self, campaign_id: int) -> dict[str, str]:
        """Trial key -> lifecycle state."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key, status FROM trials WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        return {key: status for key, status in rows}

    def counts(self, campaign_id: int) -> dict[str, int]:
        """Lifecycle state -> trial count."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) FROM trials "
                "WHERE campaign_id = ? GROUP BY status",
                (campaign_id,),
            ).fetchall()
        return {status: int(n) for status, n in rows}

    def mark_running(self, campaign_id: int, key: str, attempt: int) -> None:
        """Record a dispatch: status running, attempts = attempt + 1."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE trials SET status = ?, attempts = ?, started_unix = ? "
                "WHERE campaign_id = ? AND key = ?",
                (TRIAL_RUNNING, attempt + 1, time.time(), campaign_id, key),
            )

    def record_success(
        self,
        campaign_id: int,
        key: str,
        *,
        metrics: dict[str, float],
        wall_s: float,
        report_json: str | None = None,
    ) -> None:
        """Persist a completed trial and its metrics (replacing any
        partial earlier attempt)."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE trials SET status = ?, error = NULL, wall_s = ?, "
                "report_json = ?, finished_unix = ? "
                "WHERE campaign_id = ? AND key = ?",
                (TRIAL_DONE, wall_s, report_json, time.time(), campaign_id, key),
            )
            trial_id = conn.execute(
                "SELECT id FROM trials WHERE campaign_id = ? AND key = ?",
                (campaign_id, key),
            ).fetchone()[0]
            conn.execute(
                "DELETE FROM trial_metrics WHERE trial_id = ?", (trial_id,)
            )
            conn.executemany(
                "INSERT OR REPLACE INTO trial_metrics (trial_id, name, value) "
                "VALUES (?, ?, ?)",
                [
                    (trial_id, name, float(value))
                    for name, value in sorted(metrics.items())
                ],
            )

    def record_failure(self, campaign_id: int, key: str, error: str) -> None:
        """Record a trial as failed (attempts exhausted)."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE trials SET status = ?, error = ?, finished_unix = ? "
                "WHERE campaign_id = ? AND key = ?",
                (TRIAL_FAILED, error[:2000], time.time(), campaign_id, key),
            )

    def reset_incomplete(self, campaign_id: int) -> int:
        """Re-queue running trials left over by an interrupted run."""
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE trials SET status = ? "
                "WHERE campaign_id = ? AND status = ?",
                (TRIAL_PENDING, campaign_id, TRIAL_RUNNING),
            )
            return cursor.rowcount

    def trial_rows(self, campaign_id: int) -> Iterator[TrialRow]:
        """Every trial with its metrics, in key order."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT id, key, kind, seed, cell_json, status, attempts, "
                "error, wall_s FROM trials WHERE campaign_id = ? ORDER BY key",
                (campaign_id,),
            ).fetchall()
            metric_rows = conn.execute(
                "SELECT m.trial_id, m.name, m.value FROM trial_metrics m "
                "JOIN trials t ON t.id = m.trial_id WHERE t.campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        by_trial: dict[int, dict[str, float]] = {}
        for trial_id, name, value in metric_rows:
            by_trial.setdefault(int(trial_id), {})[name] = float(value)
        for trial_id, key, kind, seed, cell_json, status, attempts, error, wall in rows:
            yield TrialRow(
                key=key,
                kind=kind,
                seed=int(seed),
                cell=json.loads(cell_json),
                status=status,
                attempts=int(attempts),
                error=error,
                wall_s=None if wall is None else float(wall),
                metrics=by_trial.get(int(trial_id), {}),
            )

    def trial_report(self, campaign_id: int, key: str) -> dict[str, Any] | None:
        """The RunReport-compatible record a trial shipped back, if any."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT report_json FROM trials "
                "WHERE campaign_id = ? AND key = ?",
                (campaign_id, key),
            ).fetchone()
        if row is None or row[0] is None:
            return None
        return json.loads(row[0])
