"""The persistent campaign result store (SQLite, WAL mode).

One database file holds any number of campaigns.  Layout:

- ``campaigns`` — one row per campaign: the full spec JSON, its content
  digest (resume refuses a changed spec), and a coarse status;
- ``trials`` — one row per expanded trial, ``UNIQUE(campaign_id, key)``
  so re-registration on resume can never duplicate work;
- ``trial_metrics`` — one row per (trial, metric name), replaced on
  re-run so a retried trial leaves exactly one value;
- ``trial_events`` — append-only worker heartbeats (``start`` /
  ``finish`` / ``fail``), each stamped with the worker PID, feeding the
  live ``sweep status --follow`` view.

The store opens in WAL mode with a busy timeout, so a ``sweep status``
reader in another process can poll live progress while the engine
writes.  Result writes stay parent-only — workers ship results back
over the process pool — but workers *do* append their own heartbeat
events directly (one short INSERT per lifecycle edge, safe under WAL's
multi-writer contract with the busy timeout as arbiter).

Campaigns additionally persist a ``trace_id``: the engine mints one
the first time a campaign runs and every trial — including trials run
by a later ``sweep resume`` — joins that trace, which is what lets
:mod:`repro.sweep.tracing` stitch one campaign-wide span tree out of
many worker processes across interruptions.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.errors import SweepError
from repro.sweep.spec import SweepSpec, TrialSpec, canonical_json

#: Trial lifecycle states.
TRIAL_PENDING = "pending"
TRIAL_RUNNING = "running"
TRIAL_DONE = "done"
TRIAL_FAILED = "failed"

#: Campaign lifecycle states.
CAMPAIGN_CREATED = "created"
CAMPAIGN_RUNNING = "running"
CAMPAIGN_DONE = "done"
CAMPAIGN_INTERRUPTED = "interrupted"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL UNIQUE,
    spec_json TEXT NOT NULL,
    spec_digest TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'created',
    trace_id TEXT NOT NULL DEFAULT '',
    created_unix REAL NOT NULL,
    updated_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    key TEXT NOT NULL,
    kind TEXT NOT NULL,
    seed INTEGER NOT NULL,
    cell_json TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    wall_s REAL,
    report_json TEXT,
    started_unix REAL,
    finished_unix REAL,
    UNIQUE (campaign_id, key)
);
CREATE TABLE IF NOT EXISTS trial_metrics (
    trial_id INTEGER NOT NULL REFERENCES trials(id),
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (trial_id, name)
);
CREATE TABLE IF NOT EXISTS trial_events (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    key TEXT NOT NULL,
    event TEXT NOT NULL,
    attempt INTEGER NOT NULL DEFAULT 0,
    pid INTEGER NOT NULL DEFAULT 0,
    ts REAL NOT NULL,
    fields_json TEXT
);
CREATE INDEX IF NOT EXISTS idx_trials_campaign_status
    ON trials (campaign_id, status);
CREATE INDEX IF NOT EXISTS idx_trial_events_campaign
    ON trial_events (campaign_id, id);
"""


@dataclass(frozen=True)
class TrialRow:
    """One persisted trial, as the aggregation layer consumes it.

    Attributes:
        key: the trial key.
        kind: trial kind.
        seed: trial seed.
        cell: the aggregation cell (kind + params).
        status: lifecycle state.
        attempts: execution attempts so far.
        error: last failure message, if any.
        wall_s: execution wall seconds of the successful attempt.
        metrics: metric name -> value (empty unless done).
    """

    key: str
    kind: str
    seed: int
    cell: dict[str, Any]
    status: str
    attempts: int
    error: str | None
    wall_s: float | None
    metrics: dict[str, float]


class ResultStore:
    """SQLite-backed campaign/trial/metric persistence.

    Safe for one writer plus concurrent readers in other processes
    (WAL); every method is a self-contained transaction.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._tx() as conn:
                conn.executescript(_SCHEMA)
                self._migrate(conn)
        except (OSError, sqlite3.Error) as exc:
            raise SweepError(f"cannot open result store {self.path}: {exc}")

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Bring pre-telemetry store files up to the current schema."""
        columns = {
            row[1] for row in conn.execute("PRAGMA table_info(campaigns)")
        }
        if "trace_id" not in columns:
            conn.execute(
                "ALTER TABLE campaigns ADD COLUMN trace_id TEXT NOT NULL "
                "DEFAULT ''"
            )

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=10000")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        """One connection for one transaction, closed deterministically.

        ``sqlite3.Connection`` objects sit in an internal reference
        cycle (their statement-cache wrapper), so dropping the last
        visible reference does NOT close them — they linger with open
        WAL/shm handles until a cyclic GC pass.  The sweep engine forks
        pool workers, and a worker forked while the parent holds live
        SQLite handles inherits the library's in-process lock state;
        its own writes then race the parent's and corrupt the database.
        An explicit ``close()`` on every exit path is what makes the
        store fork-safe.
        """
        conn = self._connect()
        try:
            with conn:
                yield conn
        finally:
            conn.close()

    # -- campaigns ------------------------------------------------------------

    def ensure_campaign(self, spec: SweepSpec) -> int:
        """Create the campaign, or return the existing one for resume.

        Raises:
            SweepError: when a campaign of this name exists with a
                *different* spec (resuming it would mix incompatible
                trial grids).
        """
        digest = spec.digest()
        now = time.time()
        with self._tx() as conn:
            row = conn.execute(
                "SELECT id, spec_digest FROM campaigns WHERE name = ?",
                (spec.name,),
            ).fetchone()
            if row is not None:
                if row[1] != digest:
                    raise SweepError(
                        f"campaign {spec.name!r} exists with a different "
                        f"spec (digest {row[1][:12]} != {digest[:12]}); "
                        "rename the campaign or use a fresh store"
                    )
                return int(row[0])
            cursor = conn.execute(
                "INSERT INTO campaigns "
                "(name, spec_json, spec_digest, status, created_unix, "
                " updated_unix) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    spec.name,
                    canonical_json(spec.to_dict()),
                    digest,
                    CAMPAIGN_CREATED,
                    now,
                    now,
                ),
            )
            return int(cursor.lastrowid)

    def campaign_id(self, name: str) -> int:
        """Look a campaign up by name.

        Raises:
            SweepError: when absent.
        """
        with self._tx() as conn:
            row = conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            raise SweepError(f"no campaign {name!r} in {self.path}")
        return int(row[0])

    def load_spec(self, name: str) -> SweepSpec:
        """The spec a campaign was created from (for ``sweep resume``)."""
        with self._tx() as conn:
            row = conn.execute(
                "SELECT spec_json FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            raise SweepError(f"no campaign {name!r} in {self.path}")
        return SweepSpec.from_dict(json.loads(row[0]))

    def ensure_trace_id(self, campaign_id: int, trace_id: str) -> str:
        """Persist ``trace_id`` for a campaign unless one is already set.

        Returns the campaign's effective trace ID — the existing one on
        resume, so every invocation of a campaign joins the same trace.
        """
        with self._tx() as conn:
            row = conn.execute(
                "SELECT trace_id FROM campaigns WHERE id = ?", (campaign_id,)
            ).fetchone()
            if row is None:
                raise SweepError(f"no campaign id {campaign_id} in {self.path}")
            if row[0]:
                return str(row[0])
            conn.execute(
                "UPDATE campaigns SET trace_id = ? WHERE id = ?",
                (trace_id, campaign_id),
            )
            return trace_id

    def campaign_info(self, name: str) -> dict[str, Any]:
        """Status, trace ID, and trial counts of one campaign.

        Raises:
            SweepError: when absent.
        """
        with self._tx() as conn:
            row = conn.execute(
                "SELECT id, status, trace_id, created_unix, updated_unix "
                "FROM campaigns WHERE name = ?",
                (name,),
            ).fetchone()
        if row is None:
            raise SweepError(f"no campaign {name!r} in {self.path}")
        cid = int(row[0])
        return {
            "id": cid,
            "name": name,
            "status": row[1],
            "trace_id": row[2],
            "created_unix": float(row[3]),
            "updated_unix": float(row[4]),
            "trials": self.counts(cid),
        }

    def set_campaign_status(self, campaign_id: int, status: str) -> None:
        """Move a campaign through its lifecycle."""
        with self._tx() as conn:
            conn.execute(
                "UPDATE campaigns SET status = ?, updated_unix = ? WHERE id = ?",
                (status, time.time(), campaign_id),
            )

    def list_campaigns(self) -> list[dict[str, Any]]:
        """Name, status, and trial counts of every campaign in the store."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT id, name, status, created_unix FROM campaigns "
                "ORDER BY created_unix"
            ).fetchall()
            out = []
            for cid, name, status, created in rows:
                counts = dict(
                    conn.execute(
                        "SELECT status, COUNT(*) FROM trials "
                        "WHERE campaign_id = ? GROUP BY status",
                        (cid,),
                    ).fetchall()
                )
                out.append(
                    {
                        "name": name,
                        "status": status,
                        "created_unix": created,
                        "trials": counts,
                    }
                )
        return out

    # -- trials ---------------------------------------------------------------

    def register_trials(
        self, campaign_id: int, trials: list[TrialSpec]
    ) -> None:
        """Insert trial rows, ignoring ones already present (resume)."""
        with self._tx() as conn:
            conn.executemany(
                "INSERT OR IGNORE INTO trials "
                "(campaign_id, key, kind, seed, cell_json) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (
                        campaign_id,
                        t.key,
                        t.kind,
                        t.seed,
                        canonical_json(t.cell),
                    )
                    for t in trials
                ],
            )

    def statuses(self, campaign_id: int) -> dict[str, str]:
        """Trial key -> lifecycle state."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT key, status FROM trials WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        return {key: status for key, status in rows}

    def counts(self, campaign_id: int) -> dict[str, int]:
        """Lifecycle state -> trial count."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) FROM trials "
                "WHERE campaign_id = ? GROUP BY status",
                (campaign_id,),
            ).fetchall()
        return {status: int(n) for status, n in rows}

    def mark_running(self, campaign_id: int, key: str, attempt: int) -> None:
        """Record a dispatch: status running, attempts = attempt + 1."""
        with self._tx() as conn:
            conn.execute(
                "UPDATE trials SET status = ?, attempts = ?, started_unix = ? "
                "WHERE campaign_id = ? AND key = ?",
                (TRIAL_RUNNING, attempt + 1, time.time(), campaign_id, key),
            )

    def record_success(
        self,
        campaign_id: int,
        key: str,
        *,
        metrics: dict[str, float],
        wall_s: float,
        report_json: str | None = None,
    ) -> None:
        """Persist a completed trial and its metrics (replacing any
        partial earlier attempt)."""
        with self._tx() as conn:
            conn.execute(
                "UPDATE trials SET status = ?, error = NULL, wall_s = ?, "
                "report_json = ?, finished_unix = ? "
                "WHERE campaign_id = ? AND key = ?",
                (TRIAL_DONE, wall_s, report_json, time.time(), campaign_id, key),
            )
            trial_id = conn.execute(
                "SELECT id FROM trials WHERE campaign_id = ? AND key = ?",
                (campaign_id, key),
            ).fetchone()[0]
            conn.execute(
                "DELETE FROM trial_metrics WHERE trial_id = ?", (trial_id,)
            )
            conn.executemany(
                "INSERT OR REPLACE INTO trial_metrics (trial_id, name, value) "
                "VALUES (?, ?, ?)",
                [
                    (trial_id, name, float(value))
                    for name, value in sorted(metrics.items())
                ],
            )

    def record_failure(self, campaign_id: int, key: str, error: str) -> None:
        """Record a trial as failed (attempts exhausted)."""
        with self._tx() as conn:
            conn.execute(
                "UPDATE trials SET status = ?, error = ?, finished_unix = ? "
                "WHERE campaign_id = ? AND key = ?",
                (TRIAL_FAILED, error[:2000], time.time(), campaign_id, key),
            )

    def reset_incomplete(self, campaign_id: int) -> int:
        """Re-queue running trials left over by an interrupted run."""
        with self._tx() as conn:
            cursor = conn.execute(
                "UPDATE trials SET status = ? "
                "WHERE campaign_id = ? AND status = ?",
                (TRIAL_PENDING, campaign_id, TRIAL_RUNNING),
            )
            return cursor.rowcount

    def trial_rows(self, campaign_id: int) -> Iterator[TrialRow]:
        """Every trial with its metrics, in key order."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT id, key, kind, seed, cell_json, status, attempts, "
                "error, wall_s FROM trials WHERE campaign_id = ? ORDER BY key",
                (campaign_id,),
            ).fetchall()
            metric_rows = conn.execute(
                "SELECT m.trial_id, m.name, m.value FROM trial_metrics m "
                "JOIN trials t ON t.id = m.trial_id WHERE t.campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        by_trial: dict[int, dict[str, float]] = {}
        for trial_id, name, value in metric_rows:
            by_trial.setdefault(int(trial_id), {})[name] = float(value)
        for trial_id, key, kind, seed, cell_json, status, attempts, error, wall in rows:
            yield TrialRow(
                key=key,
                kind=kind,
                seed=int(seed),
                cell=json.loads(cell_json),
                status=status,
                attempts=int(attempts),
                error=error,
                wall_s=None if wall is None else float(wall),
                metrics=by_trial.get(int(trial_id), {}),
            )

    # -- worker heartbeats ----------------------------------------------------

    def record_event(
        self,
        campaign_id: int,
        key: str,
        event: str,
        *,
        attempt: int = 0,
        pid: int = 0,
        fields: dict[str, Any] | None = None,
    ) -> None:
        """Append one heartbeat event (called from worker processes).

        One short INSERT per call; WAL plus the busy timeout make this
        safe alongside the parent's result writes.
        """
        with self._tx() as conn:
            conn.execute(
                "INSERT INTO trial_events "
                "(campaign_id, key, event, attempt, pid, ts, fields_json) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    key,
                    event,
                    attempt,
                    pid,
                    time.time(),
                    None if fields is None else json.dumps(fields),
                ),
            )

    def events_since(
        self, campaign_id: int, after_id: int = 0, limit: int = 1000
    ) -> list[dict[str, Any]]:
        """Heartbeat events with ``id > after_id``, oldest first.

        The follow view polls this with the last seen ``id`` as the
        cursor; the cap bounds one poll's memory.
        """
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT id, key, event, attempt, pid, ts, fields_json "
                "FROM trial_events WHERE campaign_id = ? AND id > ? "
                "ORDER BY id LIMIT ?",
                (campaign_id, after_id, limit),
            ).fetchall()
        out = []
        for row_id, key, event, attempt, pid, ts, fields_json in rows:
            record: dict[str, Any] = {
                "id": int(row_id),
                "key": key,
                "event": event,
                "attempt": int(attempt),
                "pid": int(pid),
                "ts": float(ts),
            }
            if fields_json:
                record.update(json.loads(fields_json))
            out.append(record)
        return out

    def trial_report(self, campaign_id: int, key: str) -> dict[str, Any] | None:
        """The RunReport-compatible record a trial shipped back, if any."""
        with self._tx() as conn:
            row = conn.execute(
                "SELECT report_json FROM trials "
                "WHERE campaign_id = ? AND key = ?",
                (campaign_id, key),
            ).fetchone()
        if row is None or row[0] is None:
            return None
        return json.loads(row[0])

    def trial_reports(self, campaign_id: int) -> Iterator[tuple[str, dict[str, Any]]]:
        """Every trial's ``(key, report)`` that shipped one, in key order."""
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT key, report_json FROM trials "
                "WHERE campaign_id = ? AND report_json IS NOT NULL "
                "ORDER BY key",
                (campaign_id,),
            ).fetchall()
        for key, report_json in rows:
            yield key, json.loads(report_json)
