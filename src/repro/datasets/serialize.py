"""Serialisation of processed datasets.

Processed snapshots are the shareable artefact of a measurement study
(the paper's datasets were passed between institutions); we support a
self-describing JSON format, a compact CSV pair (nodes + links) for
interoperability with external tooling, and a binary ``.npz`` format
whose arrays round-trip losslessly without ``tolist()``/JSON costs —
the cold-start path of the snapshot query service
(:mod:`repro.serve`).

:func:`save_dataset` / :func:`load_dataset` dispatch between the three
formats by file extension (a directory selects the CSV pair).
"""

from __future__ import annotations

import csv
import json
import zipfile
from pathlib import Path

import numpy as np

from repro.datasets.mapped import MappedDataset
from repro.errors import DatasetError

_FORMAT_VERSION = 1


def dataset_to_dict(dataset: MappedDataset) -> dict:
    """A JSON-serialisable dict capturing the full dataset."""
    return {
        "format_version": _FORMAT_VERSION,
        "label": dataset.label,
        "kind": dataset.kind,
        "addresses": dataset.addresses.tolist(),
        "lats": dataset.lats.tolist(),
        "lons": dataset.lons.tolist(),
        "asns": dataset.asns.tolist(),
        "links": dataset.links.tolist(),
    }


def dataset_from_dict(payload: dict) -> MappedDataset:
    """Rebuild a dataset from :func:`dataset_to_dict` output.

    Raises:
        DatasetError: on version mismatch or missing fields.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise DatasetError(f"unsupported dataset format version {version!r}")
    try:
        links = payload["links"]
        return MappedDataset(
            label=payload["label"],
            kind=payload["kind"],
            addresses=np.asarray(payload["addresses"], dtype=np.int64),
            lats=np.asarray(payload["lats"], dtype=float),
            lons=np.asarray(payload["lons"], dtype=float),
            asns=np.asarray(payload["asns"], dtype=np.int64),
            links=(
                np.asarray(links, dtype=np.intp)
                if links
                else np.empty((0, 2), dtype=np.intp)
            ),
        )
    except KeyError as exc:
        raise DatasetError(f"dataset payload missing field {exc}") from exc


def save_dataset_json(dataset: MappedDataset, path: str | Path) -> None:
    """Write a dataset to a JSON file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(dataset_to_dict(dataset), handle)


def load_dataset_json(path: str | Path) -> MappedDataset:
    """Read a dataset from a JSON file.

    Raises:
        DatasetError: when the file is not valid dataset JSON.
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetError(f"cannot read dataset from {path}: {exc}") from exc
    return dataset_from_dict(payload)


#: Array fields of the npz layout, with their canonical dtypes.
_NPZ_ARRAYS = (
    ("addresses", np.int64),
    ("lats", np.float64),
    ("lons", np.float64),
    ("asns", np.int64),
    ("links", np.int64),
)


def save_dataset_npz(dataset: MappedDataset, path: str | Path) -> None:
    """Write a dataset to a compressed binary ``.npz`` file.

    Arrays are stored verbatim (no ``tolist()`` round-trip through JSON
    floats), so loading is lossless and fast — the format the query
    server cold-starts from.
    """
    # Write through an open handle: ``savez_compressed`` appends
    # ``.npz`` to bare path names, which would break explicit-format
    # saves to arbitrary extensions.
    with Path(path).open("wb") as handle:
        np.savez_compressed(
            handle,
            format_version=np.int64(_FORMAT_VERSION),
            label=np.asarray(dataset.label),
            kind=np.asarray(dataset.kind),
            addresses=dataset.addresses.astype(np.int64),
            lats=dataset.lats.astype(np.float64),
            lons=dataset.lons.astype(np.float64),
            asns=dataset.asns.astype(np.int64),
            links=dataset.links.astype(np.int64).reshape(-1, 2),
        )


def load_dataset_npz(path: str | Path) -> MappedDataset:
    """Read a dataset written by :func:`save_dataset_npz`.

    Raises:
        DatasetError: when the file is missing, not an npz archive, or
            has a version/field mismatch.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as payload:
            version = int(payload["format_version"])
            if version != _FORMAT_VERSION:
                raise DatasetError(
                    f"unsupported dataset format version {version!r}"
                )
            arrays = {
                name: payload[name].astype(dtype)
                for name, dtype in _NPZ_ARRAYS
            }
            label = str(payload["label"][()])
            kind = str(payload["kind"][()])
    except OSError as exc:
        raise DatasetError(f"cannot read dataset from {path}: {exc}") from exc
    except KeyError as exc:
        raise DatasetError(f"npz dataset missing field {exc}") from exc
    except (ValueError, zipfile.BadZipFile) as exc:
        raise DatasetError(f"{path} is not a dataset npz archive: {exc}") from exc
    links = arrays.pop("links").astype(np.intp)
    return MappedDataset(
        label=label,
        kind=kind,
        links=links if links.size else np.empty((0, 2), dtype=np.intp),
        **arrays,
    )


def save_dataset(
    dataset: MappedDataset, path: str | Path, format: str = "auto"
) -> None:
    """Write a dataset in the format named or implied by ``path``.

    ``format`` may be ``"json"``, ``"npz"``, ``"csv"``, or ``"auto"``
    (dispatch on the extension; anything that is not ``.json``/``.npz``
    is treated as a CSV-pair directory).

    Raises:
        DatasetError: on an unknown format name.
    """
    resolved = _resolve_format(path, format)
    if resolved == "json":
        save_dataset_json(dataset, path)
    elif resolved == "npz":
        save_dataset_npz(dataset, path)
    else:
        save_dataset_csv(dataset, path)


def load_dataset(
    path: str | Path,
    format: str = "auto",
    label: str = "csv import",
    kind: str = "skitter",
) -> MappedDataset:
    """Read a dataset in the format named or implied by ``path``.

    ``label``/``kind`` apply only to the CSV pair, which does not store
    them.

    Raises:
        DatasetError: on an unknown format or an unreadable file.
    """
    resolved = _resolve_format(path, format)
    if resolved == "json":
        return load_dataset_json(path)
    if resolved == "npz":
        return load_dataset_npz(path)
    return load_dataset_csv(path, label=label, kind=kind)


def _resolve_format(path: str | Path, format: str) -> str:
    if format == "auto":
        suffix = Path(path).suffix.lower()
        if suffix == ".json":
            return "json"
        if suffix == ".npz":
            return "npz"
        return "csv"
    if format not in ("json", "npz", "csv"):
        raise DatasetError(f"unknown dataset format {format!r}")
    return format


def save_dataset_csv(dataset: MappedDataset, directory: str | Path) -> None:
    """Write ``nodes.csv`` and ``links.csv`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with (directory / "nodes.csv").open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["address", "lat", "lon", "asn"])
        for i in range(dataset.n_nodes):
            writer.writerow(
                [
                    int(dataset.addresses[i]),
                    float(dataset.lats[i]),
                    float(dataset.lons[i]),
                    int(dataset.asns[i]),
                ]
            )
    with (directory / "links.csv").open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["node_a", "node_b"])
        for a, b in dataset.links:
            writer.writerow([int(a), int(b)])


def load_dataset_csv(
    directory: str | Path, label: str = "csv import", kind: str = "skitter"
) -> MappedDataset:
    """Read a dataset written by :func:`save_dataset_csv`.

    Raises:
        DatasetError: when either file is missing or malformed.
    """
    directory = Path(directory)
    nodes_path = directory / "nodes.csv"
    links_path = directory / "links.csv"
    if not nodes_path.exists() or not links_path.exists():
        raise DatasetError(f"{directory} does not contain nodes.csv and links.csv")
    addresses: list[int] = []
    lats: list[float] = []
    lons: list[float] = []
    asns: list[int] = []
    try:
        with nodes_path.open("r", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                addresses.append(int(row["address"]))
                lats.append(float(row["lat"]))
                lons.append(float(row["lon"]))
                asns.append(int(row["asn"]))
        links: list[tuple[int, int]] = []
        with links_path.open("r", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                links.append((int(row["node_a"]), int(row["node_b"])))
    except (KeyError, ValueError) as exc:
        raise DatasetError(f"malformed CSV dataset in {directory}: {exc}") from exc
    return MappedDataset(
        label=label,
        kind=kind,
        addresses=np.asarray(addresses, dtype=np.int64),
        lats=np.asarray(lats, dtype=float),
        lons=np.asarray(lons, dtype=float),
        asns=np.asarray(asns, dtype=np.int64),
        links=(
            np.asarray(links, dtype=np.intp)
            if links
            else np.empty((0, 2), dtype=np.intp)
        ),
    )
