"""The end-to-end pipeline: generate, measure, geolocate, AS-map.

``run_pipeline`` reproduces the paper's whole methodology section and
yields the four processed datasets of its Table I
({IxMapper, EdgeScape} x {Mercator, Skitter}) plus everything needed to
validate them against ground truth.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.bgp.routeviews import build_routeviews_snapshot
from repro.bgp.table import UNMAPPED_ASN, BgpTable
from repro.config import ScenarioConfig
from repro.datasets.mapped import LOCATION_DECIMALS, MappedDataset
from repro.errors import DatasetError
from repro.geoloc.base import GeoContext, Geolocator, build_context
from repro.geoloc.edgescape import EdgeScape
from repro.geoloc.ixmapper import IxMapper
from repro.measure.artifacts import clean_inventory
from repro.measure.inventory import RawInventory
from repro.measure.mercator import run_mercator
from repro.measure.skitter import run_skitter
from repro.net.addressing import AddressPlan
from repro.net.generate import GenerationReport, generate_ground_truth
from repro.net.topology import Topology
from repro.population.worldmodel import World, build_world


@dataclass(frozen=True, slots=True)
class ProcessingReport:
    """Per-dataset bookkeeping of the mapping stage.

    Attributes:
        label: dataset label.
        n_raw_nodes: nodes before geolocation.
        n_unmapped: nodes discarded because the tool could not place them.
        n_location_ties: Mercator routers discarded for tied interface
            location votes (the paper's 2.5-2.9%).
        n_as_unmapped: surviving nodes whose address matched no announced
            prefix (grouped into the sentinel AS).
    """

    label: str
    n_raw_nodes: int
    n_unmapped: int
    n_location_ties: int
    n_as_unmapped: int


def _majority_vote(values: list[tuple[float, float]]) -> tuple[float, float] | None:
    """Most common rounded location; None on a tie for first place."""
    counts = Counter(values)
    ranked = counts.most_common()
    if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
        return None
    return ranked[0][0]


def build_snapshot(
    inventory: RawInventory,
    geolocator: Geolocator,
    bgp_table: BgpTable,
    label: str,
) -> tuple[MappedDataset, ProcessingReport]:
    """Geolocate and AS-map a cleaned inventory into a dataset.

    Skitter nodes are located directly.  Mercator nodes take the location
    most commonly reported across their member interfaces (rounded to
    city granularity); ties discard the router.  The parent AS is, for
    Mercator, the AS most commonly reported by the member interfaces.

    Raises:
        DatasetError: if the inventory fails validation.
    """
    inventory.validate()
    n_raw = inventory.n_nodes
    kept_addresses: list[int] = []
    kept_lats: list[float] = []
    kept_lons: list[float] = []
    kept_asns: list[int] = []
    n_unmapped = 0
    n_ties = 0
    n_as_unmapped = 0

    for node in sorted(inventory.nodes):
        members = inventory.aliases[node]
        votes: list[tuple[float, float]] = []
        exact: dict[tuple[float, float], tuple[float, float]] = {}
        for member in members:
            result = geolocator.locate(member)
            if not result.mapped:
                continue
            assert result.location is not None
            key = (
                round(result.location.lat, LOCATION_DECIMALS),
                round(result.location.lon, LOCATION_DECIMALS),
            )
            votes.append(key)
            exact.setdefault(key, (result.location.lat, result.location.lon))
        if not votes:
            n_unmapped += 1
            continue
        winner = _majority_vote(votes)
        if winner is None:
            n_ties += 1
            continue
        lat, lon = exact[winner]
        # Parent AS: most common across member interfaces.
        as_votes = Counter(bgp_table.origin_of(member) for member in members)
        asn, _ = as_votes.most_common(1)[0]
        if asn == UNMAPPED_ASN:
            n_as_unmapped += 1
        kept_addresses.append(node)
        kept_lats.append(lat)
        kept_lons.append(lon)
        kept_asns.append(asn)

    address_to_index = {addr: i for i, addr in enumerate(kept_addresses)}
    link_rows = [
        (address_to_index[a], address_to_index[b])
        for a, b in inventory.links
        if a in address_to_index and b in address_to_index
    ]
    dataset = MappedDataset(
        label=label,
        kind=inventory.kind,
        addresses=np.asarray(kept_addresses, dtype=np.int64),
        lats=np.asarray(kept_lats, dtype=float),
        lons=np.asarray(kept_lons, dtype=float),
        asns=np.asarray(kept_asns, dtype=np.int64),
        links=(
            np.asarray(link_rows, dtype=np.intp)
            if link_rows
            else np.empty((0, 2), dtype=np.intp)
        ),
    )
    report = ProcessingReport(
        label=label,
        n_raw_nodes=n_raw,
        n_unmapped=n_unmapped,
        n_location_ties=n_ties,
        n_as_unmapped=n_as_unmapped,
    )
    return dataset, report


@dataclass
class PipelineResult:
    """Everything a reproduction run produces.

    Attributes:
        config: the scenario that was run.
        world: the synthetic world (population, cities, zones).
        topology: the planted ground truth.
        plan: the address registry.
        generation_report: planted-parameter record.
        bgp_table: the RouteViews-style snapshot used for AS mapping.
        datasets: label -> processed dataset, for all four Table I rows.
        processing_reports: label -> mapping-stage bookkeeping.
    """

    config: ScenarioConfig
    world: World
    topology: Topology
    plan: AddressPlan
    generation_report: GenerationReport
    bgp_table: BgpTable
    datasets: dict[str, MappedDataset] = field(default_factory=dict)
    processing_reports: dict[str, ProcessingReport] = field(default_factory=dict)

    def dataset(self, mapper: str, measurement: str) -> MappedDataset:
        """Fetch one dataset by tool names, e.g. ``("IxMapper", "Skitter")``.

        Raises:
            DatasetError: when the combination was not produced.
        """
        label = f"{mapper}, {measurement}"
        if label not in self.datasets:
            raise DatasetError(
                f"no dataset {label!r}; have {sorted(self.datasets)}"
            )
        return self.datasets[label]


def run_pipeline(config: ScenarioConfig) -> PipelineResult:
    """Run the full reproduction pipeline for one scenario."""
    rng = config.rng()
    world = build_world(rng, city_scale=config.city_scale)
    topology, plan, generation_report = generate_ground_truth(
        world, config.ground_truth, rng
    )
    bgp_table = build_routeviews_snapshot(plan, config.bgp, rng)
    context = build_context(world, topology, plan, config.geoloc, rng)

    skitter_raw = run_skitter(topology, config.skitter, rng)
    skitter_clean, _ = clean_inventory(skitter_raw)
    mercator_raw = run_mercator(topology, config.mercator, rng)
    mercator_clean, _ = clean_inventory(mercator_raw)

    result = PipelineResult(
        config=config,
        world=world,
        topology=topology,
        plan=plan,
        generation_report=generation_report,
        bgp_table=bgp_table,
    )
    for inventory, measurement in (
        (mercator_clean, "Mercator"),
        (skitter_clean, "Skitter"),
    ):
        for mapper in _mappers(context, topology, config, rng):
            label = f"{mapper.name}, {measurement}"
            dataset, report = build_snapshot(inventory, mapper, bgp_table, label)
            result.datasets[label] = dataset
            result.processing_reports[label] = report
    return result


def _mappers(
    context: GeoContext,
    topology: Topology,
    config: ScenarioConfig,
    rng: np.random.Generator,
) -> list[Geolocator]:
    """Fresh geolocator instances for one measurement's mapping passes."""
    return [
        IxMapper(
            context, rng, failure_rate=config.geoloc.ixmapper_unmapped_rate
        ),
        EdgeScape(
            context,
            topology,
            rng,
            isp_coverage=config.geoloc.edgescape_isp_coverage,
            failure_rate=config.geoloc.edgescape_unmapped_rate,
        ),
    ]
