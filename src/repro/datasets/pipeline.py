"""The end-to-end pipeline: generate, measure, geolocate, AS-map.

``run_pipeline`` reproduces the paper's whole methodology section and
yields the four processed datasets of its Table I
({IxMapper, EdgeScape} x {Mercator, Skitter}) plus everything needed to
validate them against ground truth.

The pipeline is expressed as an explicit stage DAG over
:mod:`repro.runtime`: world synthesis, ground-truth generation, the BGP
snapshot, the geolocation context, the two measurement campaigns, and
the four mapping passes are separate stages with declared inputs.  Each
stage draws from its own RNG stream spawned from the scenario seed, so
the executor may run independent branches (Skitter vs. Mercator, the
four ``build_snapshot`` passes) concurrently — or serve them from the
artifact cache — without changing a single bit of the output.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bgp.routeviews import build_routeviews_snapshot
from repro.bgp.table import UNMAPPED_ASN, BgpTable
from repro.config import ScenarioConfig
from repro.datasets.mapped import LOCATION_DECIMALS, MappedDataset
from repro.datasets.serialize import dataset_from_dict, dataset_to_dict
from repro.errors import DatasetError
from repro.geoloc.base import GeoContext, Geolocator, build_context, locate_batch
from repro.geoloc.edgescape import EdgeScape
from repro.geoloc.ixmapper import IxMapper
from repro.measure.artifacts import clean_inventory
from repro.measure.inventory import RawInventory
from repro.measure.mercator import run_mercator
from repro.measure.skitter import run_skitter
from repro.net.addressing import AddressPlan
from repro.obs import span as obs_span
from repro.net.generate import GenerationReport, generate_ground_truth
from repro.net.topology import Topology
from repro.population.worldmodel import World, build_world
from repro.runtime import (
    ArtifactCache,
    Stage,
    StageContext,
    StageGraph,
    Telemetry,
    execute,
    register_codec,
)

#: Mapping tools and measurements, in the paper's presentation order.
MAPPER_NAMES = ("IxMapper", "EdgeScape")
MEASUREMENT_NAMES = ("Mercator", "Skitter")

#: Stage names of the pipeline DAG (mapping stages are derived below).
STAGE_WORLD = "world"
STAGE_GROUND_TRUTH = "ground_truth"
STAGE_BGP = "bgp_snapshot"
STAGE_GEO_CONTEXT = "geo_context"
STAGE_SKITTER = "skitter"
STAGE_MERCATOR = "mercator"

_MEASUREMENT_STAGES = {"Skitter": STAGE_SKITTER, "Mercator": STAGE_MERCATOR}


def mapping_stage_name(mapper: str, measurement: str) -> str:
    """The DAG stage name of one mapping pass."""
    return f"map:{mapper},{measurement}"


@dataclass(frozen=True, slots=True)
class ProcessingReport:
    """Per-dataset bookkeeping of the mapping stage.

    Attributes:
        label: dataset label.
        n_raw_nodes: nodes before geolocation.
        n_unmapped: nodes discarded because the tool could not place them.
        n_location_ties: Mercator routers discarded for tied interface
            location votes (the paper's 2.5-2.9%).
        n_as_unmapped: surviving nodes whose address matched no announced
            prefix (grouped into the sentinel AS).
    """

    label: str
    n_raw_nodes: int
    n_unmapped: int
    n_location_ties: int
    n_as_unmapped: int


def _majority_vote(values: list[tuple[float, float]]) -> tuple[float, float] | None:
    """Most common rounded location; None on a tie for first place."""
    counts = Counter(values)
    ranked = counts.most_common()
    if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
        return None
    return ranked[0][0]


def build_snapshot(
    inventory: RawInventory,
    geolocator: Geolocator,
    bgp_table: BgpTable,
    label: str,
) -> tuple[MappedDataset, ProcessingReport]:
    """Geolocate and AS-map a cleaned inventory into a dataset.

    Skitter nodes are located directly.  Mercator nodes take the location
    most commonly reported across their member interfaces (rounded to
    city granularity); ties discard the router.  The parent AS is, for
    Mercator, the AS most commonly reported by the member interfaces.

    All member interfaces are geolocated in one ``locate_many`` batch —
    the mapping stage's hot path — rather than one ``locate`` call per
    interface.

    Raises:
        DatasetError: if the inventory fails validation.
    """
    inventory.validate()
    n_raw = inventory.n_nodes
    kept_addresses: list[int] = []
    kept_lats: list[float] = []
    kept_lons: list[float] = []
    kept_asns: list[int] = []
    n_unmapped = 0
    n_ties = 0
    n_as_unmapped = 0

    ordered_nodes = sorted(inventory.nodes)
    member_lists = [inventory.aliases[node] for node in ordered_nodes]
    flat_members = [member for members in member_lists for member in members]
    flat_results = locate_batch(geolocator, flat_members)

    offset = 0
    for node, members in zip(ordered_nodes, member_lists):
        results = flat_results[offset:offset + len(members)]
        offset += len(members)
        votes: list[tuple[float, float]] = []
        exact: dict[tuple[float, float], tuple[float, float]] = {}
        for result in results:
            if not result.mapped:
                continue
            assert result.location is not None
            key = (
                round(result.location.lat, LOCATION_DECIMALS),
                round(result.location.lon, LOCATION_DECIMALS),
            )
            votes.append(key)
            exact.setdefault(key, (result.location.lat, result.location.lon))
        if not votes:
            n_unmapped += 1
            continue
        winner = _majority_vote(votes)
        if winner is None:
            n_ties += 1
            continue
        lat, lon = exact[winner]
        # Parent AS: most common across member interfaces.
        as_votes = Counter(bgp_table.origin_of(member) for member in members)
        asn, _ = as_votes.most_common(1)[0]
        if asn == UNMAPPED_ASN:
            n_as_unmapped += 1
        kept_addresses.append(node)
        kept_lats.append(lat)
        kept_lons.append(lon)
        kept_asns.append(asn)

    address_to_index = {addr: i for i, addr in enumerate(kept_addresses)}
    link_rows = [
        (address_to_index[a], address_to_index[b])
        for a, b in inventory.links
        if a in address_to_index and b in address_to_index
    ]
    dataset = MappedDataset(
        label=label,
        kind=inventory.kind,
        addresses=np.asarray(kept_addresses, dtype=np.int64),
        lats=np.asarray(kept_lats, dtype=float),
        lons=np.asarray(kept_lons, dtype=float),
        asns=np.asarray(kept_asns, dtype=np.int64),
        links=(
            np.asarray(link_rows, dtype=np.intp)
            if link_rows
            else np.empty((0, 2), dtype=np.intp)
        ),
    )
    report = ProcessingReport(
        label=label,
        n_raw_nodes=n_raw,
        n_unmapped=n_unmapped,
        n_location_ties=n_ties,
        n_as_unmapped=n_as_unmapped,
    )
    return dataset, report


@dataclass
class PipelineResult:
    """Everything a reproduction run produces.

    Attributes:
        config: the scenario that was run.
        world: the synthetic world (population, cities, zones).
        topology: the planted ground truth.
        plan: the address registry.
        generation_report: planted-parameter record.
        bgp_table: the RouteViews-style snapshot used for AS mapping.
        datasets: label -> processed dataset, for all four Table I rows.
        processing_reports: label -> mapping-stage bookkeeping.
    """

    config: ScenarioConfig
    world: World
    topology: Topology
    plan: AddressPlan
    generation_report: GenerationReport
    bgp_table: BgpTable
    datasets: dict[str, MappedDataset] = field(default_factory=dict)
    processing_reports: dict[str, ProcessingReport] = field(default_factory=dict)

    def dataset(self, mapper: str, measurement: str) -> MappedDataset:
        """Fetch one dataset by tool names, e.g. ``("IxMapper", "Skitter")``.

        Raises:
            DatasetError: when the combination was not produced.
        """
        label = f"{mapper}, {measurement}"
        if label not in self.datasets:
            raise DatasetError(
                f"no dataset {label!r}; have {sorted(self.datasets)}"
            )
        return self.datasets[label]


# --- Stage functions ---------------------------------------------------------


def _stage_world(ctx: StageContext) -> World:
    return build_world(ctx.rng, city_scale=ctx.config.city_scale)


def _stage_ground_truth(
    ctx: StageContext,
) -> tuple[Topology, AddressPlan, GenerationReport]:
    return generate_ground_truth(
        ctx.input(STAGE_WORLD), ctx.config.ground_truth, ctx.rng
    )


def _stage_bgp(ctx: StageContext) -> BgpTable:
    _, plan, _ = ctx.input(STAGE_GROUND_TRUTH)
    return build_routeviews_snapshot(plan, ctx.config.bgp, ctx.rng)


def _stage_geo_context(ctx: StageContext) -> GeoContext:
    topology, plan, _ = ctx.input(STAGE_GROUND_TRUTH)
    return build_context(
        ctx.input(STAGE_WORLD), topology, plan, ctx.config.geoloc, ctx.rng
    )


def _stage_skitter(ctx: StageContext) -> RawInventory:
    topology, _, _ = ctx.input(STAGE_GROUND_TRUTH)
    raw = run_skitter(topology, ctx.config.skitter, ctx.rng)
    cleaned, _ = clean_inventory(raw)
    return cleaned


def _stage_mercator(ctx: StageContext) -> RawInventory:
    topology, _, _ = ctx.input(STAGE_GROUND_TRUTH)
    raw = run_mercator(topology, ctx.config.mercator, ctx.rng)
    cleaned, _ = clean_inventory(raw)
    return cleaned


def _make_mapper(
    mapper: str,
    context: GeoContext,
    topology: Topology,
    config: ScenarioConfig,
    rng: np.random.Generator,
) -> Geolocator:
    """A fresh geolocator instance for one mapping pass."""
    if mapper == "IxMapper":
        return IxMapper(
            context, rng, failure_rate=config.geoloc.ixmapper_unmapped_rate
        )
    if mapper == "EdgeScape":
        return EdgeScape(
            context,
            topology,
            rng,
            isp_coverage=config.geoloc.edgescape_isp_coverage,
            failure_rate=config.geoloc.edgescape_unmapped_rate,
        )
    raise DatasetError(f"unknown mapper {mapper!r}")


def _make_mapping_stage(mapper: str, measurement: str):
    """A stage function running one (mapper, measurement) pass."""

    def run(ctx: StageContext) -> tuple[MappedDataset, ProcessingReport]:
        topology, _, _ = ctx.input(STAGE_GROUND_TRUTH)
        geolocator = _make_mapper(
            mapper, ctx.input(STAGE_GEO_CONTEXT), topology, ctx.config, ctx.rng
        )
        return build_snapshot(
            ctx.input(_MEASUREMENT_STAGES[measurement]),
            geolocator,
            ctx.input(STAGE_BGP),
            f"{mapper}, {measurement}",
        )

    return run


# --- Snapshot cache codec ----------------------------------------------------
#
# Mapping-stage artifacts are (MappedDataset, ProcessingReport) pairs —
# the shareable output of the study — so they are cached in the
# library's JSON interchange format (datasets/serialize.py) rather than
# pickled.


def _dump_snapshot(value: tuple[MappedDataset, ProcessingReport], path: Path) -> None:
    dataset, report = value
    payload = {
        "dataset": dataset_to_dict(dataset),
        "report": dataclasses.asdict(report),
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def _load_snapshot(path: Path) -> tuple[MappedDataset, ProcessingReport]:
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return (
        dataset_from_dict(payload["dataset"]),
        ProcessingReport(**payload["report"]),
    )


register_codec("snapshot-json", ".json", _dump_snapshot, _load_snapshot)


# --- Ground-truth cache codec ------------------------------------------------
#
# The ground-truth artifact is (Topology, AddressPlan, GenerationReport).
# The topology's column arrays go straight into a compressed-free ``.npz``
# archive — no per-object pickling — with the plan and report attached as
# a JSON sidecar string inside the same file.


def _dump_ground_truth(
    value: tuple[Topology, AddressPlan, GenerationReport], path: Path
) -> None:
    topology, plan, report = value
    meta = {"plan": plan.to_dict(), "report": dataclasses.asdict(report)}
    topology.to_npz(path, extra={"meta_json": json.dumps(meta)})


def _load_ground_truth(
    path: Path,
) -> tuple[Topology, AddressPlan, GenerationReport]:
    topology = Topology.from_npz(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta_json"]))
    plan = AddressPlan.from_dict(meta["plan"])
    report_fields = dict(meta["report"])
    report_fields["as_sizes"] = {
        int(asn): count for asn, count in report_fields["as_sizes"].items()
    }
    report = GenerationReport(**report_fields)
    return topology, plan, report


register_codec("ground-truth-npz", ".npz", _dump_ground_truth, _load_ground_truth)


def build_pipeline_graph() -> StageGraph:
    """The reproduction's stage DAG.

    Stage registration order is part of the contract: per-stage RNG
    streams are assigned by this order (see ``StageGraph.seed_streams``),
    so reordering registrations changes every golden value.
    """
    graph = StageGraph()
    graph.add(Stage(name=STAGE_WORLD, fn=_stage_world))
    graph.add(
        Stage(
            name=STAGE_GROUND_TRUTH,
            fn=_stage_ground_truth,
            inputs=(STAGE_WORLD,),
            codec="ground-truth-npz",
        )
    )
    graph.add(Stage(name=STAGE_BGP, fn=_stage_bgp, inputs=(STAGE_GROUND_TRUTH,)))
    graph.add(
        Stage(
            name=STAGE_GEO_CONTEXT,
            fn=_stage_geo_context,
            inputs=(STAGE_WORLD, STAGE_GROUND_TRUTH),
        )
    )
    graph.add(
        Stage(name=STAGE_SKITTER, fn=_stage_skitter, inputs=(STAGE_GROUND_TRUTH,))
    )
    graph.add(
        Stage(name=STAGE_MERCATOR, fn=_stage_mercator, inputs=(STAGE_GROUND_TRUTH,))
    )
    for measurement in MEASUREMENT_NAMES:
        for mapper in MAPPER_NAMES:
            graph.add(
                Stage(
                    name=mapping_stage_name(mapper, measurement),
                    fn=_make_mapping_stage(mapper, measurement),
                    inputs=(
                        STAGE_GROUND_TRUTH,
                        STAGE_GEO_CONTEXT,
                        STAGE_BGP,
                        _MEASUREMENT_STAGES[measurement],
                    ),
                    codec="snapshot-json",
                )
            )
    return graph


def run_pipeline(
    config: ScenarioConfig,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    telemetry: Telemetry | None = None,
) -> PipelineResult:
    """Run the full reproduction pipeline for one scenario.

    Args:
        config: the scenario to reproduce.
        jobs: worker threads for independent stages (1 = serial).  The
            result is bit-for-bit identical for any value.
        cache_dir: optional artifact-cache directory; warm runs serve
            generation/measurement stages from disk.
        telemetry: optional per-stage event collector (``--profile``).
    """
    graph = build_pipeline_graph()
    cache = ArtifactCache(cache_dir) if cache_dir is not None else None
    with obs_span("pipeline", seed=config.seed, jobs=jobs) as pipeline_span:
        artifacts = execute(
            graph,
            config,
            seed=config.seed,
            jobs=jobs,
            cache=cache,
            telemetry=telemetry,
        )
        if cache is not None:
            pipeline_span.set(cache_hits=cache.hits, cache_misses=cache.misses)
    topology, plan, generation_report = artifacts[STAGE_GROUND_TRUTH]
    result = PipelineResult(
        config=config,
        world=artifacts[STAGE_WORLD],
        topology=topology,
        plan=plan,
        generation_report=generation_report,
        bgp_table=artifacts[STAGE_BGP],
    )
    for measurement in MEASUREMENT_NAMES:
        for mapper in MAPPER_NAMES:
            label = f"{mapper}, {measurement}"
            dataset, report = artifacts[mapping_stage_name(mapper, measurement)]
            result.datasets[label] = dataset
            result.processing_reports[label] = report
    return result
