"""Processed datasets and the end-to-end reproduction pipeline."""

from repro.datasets.mapped import LOCATION_DECIMALS, MappedDataset
from repro.datasets.pipeline import (
    PipelineResult,
    ProcessingReport,
    build_snapshot,
    run_pipeline,
)
from repro.datasets.serialize import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset_csv,
    load_dataset_json,
    save_dataset_csv,
    save_dataset_json,
)

__all__ = [
    "LOCATION_DECIMALS",
    "MappedDataset",
    "PipelineResult",
    "ProcessingReport",
    "build_snapshot",
    "run_pipeline",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset_csv",
    "load_dataset_json",
    "save_dataset_csv",
    "save_dataset_json",
]
