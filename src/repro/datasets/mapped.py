"""Processed (geographically mapped, AS-labelled) datasets.

A :class:`MappedDataset` is the paper's unit of analysis — one row of its
Table I: a measured node inventory where every node carries coordinates
and an origin AS, plus the observed links between nodes.  Nodes are
interfaces for Skitter-derived datasets and routers for
Mercator-derived ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bgp.table import UNMAPPED_ASN
from repro.errors import DatasetError
from repro.geo.distance import link_lengths_miles
from repro.geo.regions import Region

#: Decimal degrees of rounding that defines a "distinct location"
#: (roughly city granularity, the accuracy limit of the mapping tools).
LOCATION_DECIMALS = 1


@dataclass(frozen=True)
class MappedDataset:
    """A fully processed snapshot.

    Attributes:
        label: e.g. ``"IxMapper, Skitter"`` (a Table I row name).
        kind: ``"skitter"`` or ``"mercator"``.
        addresses: node address per node (dense, parallel arrays follow).
        lats, lons: mapped coordinates per node.
        asns: origin AS per node (:data:`UNMAPPED_ASN` when the BGP
            table had no covering prefix).
        links: integer array of shape (n_links, 2): node indices.
    """

    label: str
    kind: str
    addresses: np.ndarray
    lats: np.ndarray
    lons: np.ndarray
    asns: np.ndarray
    links: np.ndarray

    def __post_init__(self) -> None:
        n = self.addresses.shape[0]
        for name in ("lats", "lons", "asns"):
            if getattr(self, name).shape != (n,):
                raise DatasetError(f"{name} is not parallel to addresses")
        if self.links.size and (
            self.links.ndim != 2 or self.links.shape[1] != 2
        ):
            raise DatasetError("links must be an (m, 2) index array")
        if self.links.size:
            if self.links.min() < 0 or self.links.max() >= n:
                raise DatasetError("link index out of range")
            if np.any(self.links[:, 0] == self.links[:, 1]):
                raise DatasetError("dataset contains a self-loop link")

    # -- basic shape ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of mapped nodes."""
        return int(self.addresses.shape[0])

    @property
    def n_links(self) -> int:
        """Number of observed links."""
        return int(self.links.shape[0]) if self.links.size else 0

    def location_keys(self) -> np.ndarray:
        """Rounded (lat, lon) identity per node, as an (n, 2) array."""
        return np.column_stack(
            [
                np.round(self.lats, LOCATION_DECIMALS),
                np.round(self.lons, LOCATION_DECIMALS),
            ]
        )

    @property
    def n_locations(self) -> int:
        """Number of distinct rounded locations (a Table I column)."""
        if self.n_nodes == 0:
            return 0
        return int(np.unique(self.location_keys(), axis=0).shape[0])

    # -- geometry ------------------------------------------------------------

    def link_lengths(self) -> np.ndarray:
        """Great-circle length in miles of every link."""
        if self.n_links == 0:
            return np.empty(0)
        return link_lengths_miles(
            self.lats, self.lons, self.links[:, 0], self.links[:, 1]
        )

    def interdomain_mask(self) -> np.ndarray:
        """Boolean per link: True when endpoints map to different ASes.

        Links with an unmapped endpoint are excluded (False) — the paper
        omits the unmapped group from AS analyses.
        """
        if self.n_links == 0:
            return np.empty(0, dtype=bool)
        a = self.asns[self.links[:, 0]]
        b = self.asns[self.links[:, 1]]
        known = (a != UNMAPPED_ASN) & (b != UNMAPPED_ASN)
        return known & (a != b)

    def intradomain_mask(self) -> np.ndarray:
        """Boolean per link: True when endpoints map to the same known AS."""
        if self.n_links == 0:
            return np.empty(0, dtype=bool)
        a = self.asns[self.links[:, 0]]
        b = self.asns[self.links[:, 1]]
        known = (a != UNMAPPED_ASN) & (b != UNMAPPED_ASN)
        return known & (a == b)

    # -- region restriction -----------------------------------------------------

    def restrict(self, region: Region) -> "MappedDataset":
        """The sub-dataset of nodes inside ``region`` with induced links."""
        mask = region.contains_mask(self.lats, self.lons)
        index = np.full(self.n_nodes, -1, dtype=np.intp)
        kept = np.flatnonzero(mask)
        index[kept] = np.arange(kept.size)
        if self.n_links:
            keep_link = mask[self.links[:, 0]] & mask[self.links[:, 1]]
            new_links = index[self.links[keep_link]]
        else:
            new_links = np.empty((0, 2), dtype=np.intp)
        return MappedDataset(
            label=f"{self.label} [{region.name}]",
            kind=self.kind,
            addresses=self.addresses[kept],
            lats=self.lats[kept],
            lons=self.lons[kept],
            asns=self.asns[kept],
            links=new_links,
        )

    # -- AS structure -----------------------------------------------------------

    def known_asns(self) -> np.ndarray:
        """Sorted distinct mapped ASNs (unmapped sentinel excluded)."""
        return np.unique(self.asns[self.asns != UNMAPPED_ASN])

    def as_node_counts(self) -> dict[int, int]:
        """ASN -> number of nodes mapped to it."""
        asns, counts = np.unique(
            self.asns[self.asns != UNMAPPED_ASN], return_counts=True
        )
        return {int(a): int(c) for a, c in zip(asns, counts)}

    def as_graph_edges(self) -> set[tuple[int, int]]:
        """Distinct AS-AS adjacencies implied by interdomain links."""
        edges: set[tuple[int, int]] = set()
        mask = self.interdomain_mask()
        if not mask.any():
            return edges
        a = self.asns[self.links[mask, 0]]
        b = self.asns[self.links[mask, 1]]
        for x, y in zip(a, b):
            edges.add((int(min(x, y)), int(max(x, y))))
        return edges

    def as_degrees(self) -> dict[int, int]:
        """ASN -> degree in the AS graph."""
        degrees: dict[int, int] = {int(a): 0 for a in self.known_asns()}
        for x, y in self.as_graph_edges():
            degrees[x] = degrees.get(x, 0) + 1
            degrees[y] = degrees.get(y, 0) + 1
        return degrees

    def nodes_of_as(self, asn: int) -> np.ndarray:
        """Node indices mapped to the given AS."""
        return np.flatnonzero(self.asns == asn)
