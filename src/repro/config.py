"""Scenario configuration.

One :class:`ScenarioConfig` object fully determines a reproduction run:
the synthetic world, the planted ground-truth Internet, the measurement
campaigns, and the geolocation error models.  All randomness flows from
its single ``seed`` — the pipeline spawns one child RNG stream per
stage from it (:mod:`repro.runtime`), so every table and figure is
reproducible bit-for-bit regardless of execution schedule.

The *planted* parameters here (per-zone superlinearity ``alpha``, Waxman
scale ``L``, long-range link fraction, AS dispersal thresholds) are
exactly the quantities the paper's analyses estimate; the end-to-end
pipeline's job is to recover them through the measurement and mapping
noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

#: Planted router-density superlinearity exponent per zone (Section IV:
#: the paper reports fitted slopes of 1.2-1.75 across US/Europe/Japan).
DEFAULT_ALPHA = {
    "USA": 1.25,
    "W. Europe": 1.6,
    "Japan": 1.7,
    "Africa": 1.3,
    "South America": 1.3,
    "Mexico": 1.3,
    "Australia": 1.4,
}

#: Planted Waxman decay scale in miles per zone (Section V: the paper
#: estimates L ~ 140 mi for the US and Japan, ~80 mi for Europe).
DEFAULT_WAXMAN_L = {
    "USA": 140.0,
    "W. Europe": 80.0,
    "Japan": 140.0,
    "Africa": 180.0,
    "South America": 180.0,
    "Mexico": 150.0,
    "Australia": 160.0,
}


@dataclass(frozen=True, slots=True)
class GroundTruthConfig:
    """Parameters of the planted Internet.

    Attributes:
        total_routers: router count worldwide.
        n_ases: number of autonomous systems.
        mean_links_per_router: target link density (links / routers).
        long_range_fraction: fraction of extra intra-AS links drawn
            distance-independently (the flat large-d regime of Figure 6).
        interdomain_link_fraction: target fraction of links that cross AS
            boundaries (the paper observes < 20%).
        as_size_exponent: Zipf exponent of AS router-share by rank.
        tier1_count: number of globally meshed backbone ASes.
        tier2_count: number of regional ASes.
        max_pops_fraction: cap on an AS's PoP count as a fraction of its
            router count.
        global_dispersal_threshold: router count beyond which every AS is
            maximally (globally) dispersed — the Section VI cutoff.
        small_global_probability: chance that a *small* AS nevertheless
            disperses globally (the paper sees worldwide 3-location ASes).
        rural_router_fraction: routers placed at rural population points
            rather than city PoPs.
        pop_jitter_deg: std-dev of router placement around a city centre.
        alpha: per-zone superlinearity exponents.
        waxman_l_miles: per-zone Waxman decay scales.
    """

    total_routers: int = 30_000
    n_ases: int = 600
    mean_links_per_router: float = 1.5
    long_range_fraction: float = 0.10
    interdomain_link_fraction: float = 0.16
    as_size_exponent: float = 1.0
    tier1_count: int = 12
    tier2_count: int = 90
    max_pops_fraction: float = 0.5
    global_dispersal_threshold: int = 400
    small_global_probability: float = 0.12
    rural_router_fraction: float = 0.04
    pop_jitter_deg: float = 0.05
    alpha: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_ALPHA))
    waxman_l_miles: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WAXMAN_L)
    )

    def __post_init__(self) -> None:
        if self.total_routers < 10:
            raise ConfigError("total_routers must be at least 10")
        if self.n_ases < 3 or self.n_ases > self.total_routers:
            raise ConfigError("n_ases must be in [3, total_routers]")
        if self.mean_links_per_router < 1.0:
            raise ConfigError("mean_links_per_router must be >= 1.0 for connectivity")
        for name, value in (
            ("long_range_fraction", self.long_range_fraction),
            ("interdomain_link_fraction", self.interdomain_link_fraction),
            ("small_global_probability", self.small_global_probability),
            ("rural_router_fraction", self.rural_router_fraction),
        ):
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.tier1_count + self.tier2_count >= self.n_ases:
            raise ConfigError("tier1_count + tier2_count must be < n_ases")


@dataclass(frozen=True, slots=True)
class SkitterConfig:
    """Parameters of the Skitter-style measurement campaign.

    Attributes:
        n_monitors: probing vantage points (the paper's dataset unions 19).
        destinations_per_monitor: destination list size per monitor.
        response_rate: probability a router answers TTL-expired probes.
        max_hops: probe TTL ceiling.
    """

    n_monitors: int = 19
    destinations_per_monitor: int = 4_000
    response_rate: float = 0.97
    max_hops: int = 40

    def __post_init__(self) -> None:
        if self.n_monitors < 1:
            raise ConfigError("need at least one monitor")
        if self.destinations_per_monitor < 1:
            raise ConfigError("need at least one destination per monitor")
        if not (0.0 < self.response_rate <= 1.0):
            raise ConfigError("response_rate must be in (0, 1]")
        if self.max_hops < 2:
            raise ConfigError("max_hops must be at least 2")


@dataclass(frozen=True, slots=True)
class MercatorConfig:
    """Parameters of the Mercator-style measurement campaign.

    Attributes:
        n_targets: heuristically probed destination count.
        n_source_routed: lateral probes via random intermediate routers.
        response_rate: probability a router answers probes.
        alias_resolution_rate: probability a router answers the UDP alias
            probe correctly (failures leave its interfaces unmerged).
        max_hops: probe TTL ceiling.
    """

    n_targets: int = 6_000
    n_source_routed: int = 3_000
    response_rate: float = 0.97
    alias_resolution_rate: float = 0.93
    max_hops: int = 40

    def __post_init__(self) -> None:
        if self.n_targets < 1 or self.n_source_routed < 0:
            raise ConfigError("invalid Mercator probe counts")
        for name, value in (
            ("response_rate", self.response_rate),
            ("alias_resolution_rate", self.alias_resolution_rate),
        ):
            if not (0.0 < value <= 1.0):
                raise ConfigError(f"{name} must be in (0, 1]")
        if self.max_hops < 2:
            raise ConfigError("max_hops must be at least 2")


@dataclass(frozen=True, slots=True)
class GeolocConfig:
    """Error-model parameters of the two geolocation simulators.

    Attributes:
        ixmapper_dnsloc_rate: fraction of interfaces with a DNS LOC record.
        ixmapper_unmapped_rate: fraction IxMapper cannot locate at all.
        edgescape_unmapped_rate: fraction EdgeScape cannot locate.
        edgescape_isp_coverage: fraction of ASes for which EdgeScape has
            internal ISP location feeds (true-city accuracy).
        city_snap_jitter_deg: residual error when snapping to a city.
    """

    ixmapper_dnsloc_rate: float = 0.004
    ixmapper_unmapped_rate: float = 0.012
    edgescape_unmapped_rate: float = 0.004
    edgescape_isp_coverage: float = 0.85
    city_snap_jitter_deg: float = 0.01

    def __post_init__(self) -> None:
        for name in (
            "ixmapper_dnsloc_rate",
            "ixmapper_unmapped_rate",
            "edgescape_unmapped_rate",
            "edgescape_isp_coverage",
            "city_snap_jitter_deg",
        ):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class BgpConfig:
    """Parameters of the RouteViews-style BGP snapshot.

    Attributes:
        unannounced_rate: fraction of allocated prefixes missing from the
            RIB (the paper finds 1.5-2.8% of addresses unmapped).
        deaggregation_rate: fraction of announced prefixes additionally
            announced as two more-specific halves (exercises true
            longest-prefix matching).
    """

    unannounced_rate: float = 0.02
    deaggregation_rate: float = 0.15

    def __post_init__(self) -> None:
        for name in ("unannounced_rate", "deaggregation_rate"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Everything needed to reproduce the paper end to end.

    Attributes:
        seed: master RNG seed.
        city_scale: scales synthetic city counts (and with them run time).
        ground_truth: planted-Internet parameters.
        skitter: Skitter campaign parameters.
        mercator: Mercator campaign parameters.
        geoloc: geolocation error models.
        bgp: BGP snapshot parameters.
    """

    seed: int = 20020103
    city_scale: float = 1.0
    ground_truth: GroundTruthConfig = field(default_factory=GroundTruthConfig)
    skitter: SkitterConfig = field(default_factory=SkitterConfig)
    mercator: MercatorConfig = field(default_factory=MercatorConfig)
    geoloc: GeolocConfig = field(default_factory=GeolocConfig)
    bgp: BgpConfig = field(default_factory=BgpConfig)

    def __post_init__(self) -> None:
        if self.city_scale <= 0:
            raise ConfigError("city_scale must be positive")

    def rng(self) -> np.random.Generator:
        """A fresh generator seeded from this scenario's seed."""
        return np.random.default_rng(self.seed)


def small_scenario(seed: int = 12) -> ScenarioConfig:
    """A fast scenario for tests: ~2.5k routers, seconds of wall time."""
    return ScenarioConfig(
        seed=seed,
        city_scale=0.25,
        ground_truth=GroundTruthConfig(total_routers=2_500, n_ases=120,
                                       tier1_count=6, tier2_count=24),
        skitter=SkitterConfig(n_monitors=8, destinations_per_monitor=600),
        mercator=MercatorConfig(n_targets=900, n_source_routed=400),
    )


def tiny_scenario(seed: int = 12) -> ScenarioConfig:
    """A minimal scenario for sweep campaigns: ~700 routers, sub-second.

    Small enough that a campaign of dozens of trials stays interactive,
    yet every Section IV-VI analysis still produces a finite estimate.
    """
    return ScenarioConfig(
        seed=seed,
        city_scale=0.12,
        ground_truth=GroundTruthConfig(total_routers=700, n_ases=50,
                                       tier1_count=4, tier2_count=10),
        skitter=SkitterConfig(n_monitors=4, destinations_per_monitor=250),
        mercator=MercatorConfig(n_targets=350, n_source_routed=150),
    )


def default_scenario(seed: int = 20020103) -> ScenarioConfig:
    """The benchmark scenario: ~30k routers, minutes of wall time."""
    return ScenarioConfig(seed=seed)


def large_scenario(seed: int = 20020103) -> ScenarioConfig:
    """A production-scale scenario: ~100k routers.

    Approaches the paper's real input sizes (704k Skitter interfaces,
    228k Mercator routers were the originals) while staying tractable on
    one machine with the array-native topology core.  Measurement
    campaign sizes grow sub-linearly so the scenario stays CI-friendly.
    """
    return ScenarioConfig(
        seed=seed,
        city_scale=1.5,
        ground_truth=GroundTruthConfig(
            total_routers=100_000,
            n_ases=1_200,
            tier1_count=16,
            tier2_count=140,
        ),
        skitter=SkitterConfig(n_monitors=24, destinations_per_monitor=8_000),
        mercator=MercatorConfig(n_targets=20_000, n_source_routed=4_000),
    )
