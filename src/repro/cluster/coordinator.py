"""The cluster coordinator: one front door over N shard ranges × R replicas.

Serves the exact protocol of a single-process
:class:`~repro.serve.server.SnapshotServer` — byte-identical bodies,
same status codes, same error messages — by routing and merging:

- ``/locate`` — binary search over the routing table's range bounds
  picks the one owning shard; point lookups flow through the
  coordinator's own :class:`MicroBatcher` so concurrent misses coalesce
  into per-shard ``/internal/locate-lines`` batches whose pre-encoded
  JSON lines are spliced straight into responses.
- ``/near`` — scatter to every range, merge by ``(miles, address)``
  (the index's own tie-break, so the merged order equals the
  single-process order), truncate to ``k``/``limit``.
- ``/as/<asn>`` — scatter; exactly one shard owns any AS, so the first
  ``200`` is relayed verbatim.
- ``/distance-preference`` — scatter ``/internal/pref-partial``; the
  integer histograms sum exactly to the single-process counts and the
  shared payload builder re-emits identical JSON.

Every shard request is pinned to the routing *generation* it was
planned against (``?_gen=``) and carries the coordinator's trace id in
the ``X-Repro-Trace`` header.  Failures fail over between replicas with
hedged retry (:func:`request_with_failover`); a hot snapshot swap
(:meth:`ClusterCoordinator.reload`) stages the new snapshot shard by
shard, then atomically replaces the routing object — requests in
flight finish against the old generation, which is retired only after
its pin count drains.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from urllib.parse import quote

import numpy as np

from repro import __version__
from repro.core.distance import preference_from_counts
from repro.errors import (
    AnalysisError,
    GeoError,
    OverloadError,
    ServeError,
)
from repro.geo.regions import region_by_name
from repro.obs.bus import TelemetryBus, publish as _bus_publish
from repro.obs.export import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.obs.export import merge_expositions, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TraceContext,
    Tracer,
    TraceSampler,
    new_trace_id,
    use_trace_context,
)
from repro.cluster.client import (
    HealthChecker,
    ReplicaSet,
    ShardClient,
    ShardShedding,
    ShardUnavailable,
    request_with_failover,
)
from repro.cluster.plan import ShardRange, partition_bounds, range_indices
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import LruCache
from repro.serve.server import (
    _JSON_TYPE,
    _Handler,
    _TcpServer,
    encode_json,
    endpoint_of,
    int_param,
    locate_miss_message,
    parse_address_list,
    parse_as_path,
    parse_near_query,
    parse_query,
    preference_payload,
)

_TEXT_METRICS_TYPE = _METRICS_CONTENT_TYPE.encode("latin-1")


class Routing:
    """One immutable generation of the cluster's routing state.

    Replaced wholesale on reload — readers grab a reference once per
    request and *pin* it, so a swap mid-request can never mix two
    snapshots, and the old generation is retired only after its pin
    count drains to zero.
    """

    def __init__(
        self,
        gen: int,
        ranges: list[ShardRange],
        replica_sets: list[ReplicaSet],
        snapshot_hash: str,
    ) -> None:
        if len(ranges) != len(replica_sets):
            raise ServeError("one replica set per shard range required")
        self.gen = gen
        self.ranges = ranges
        self.replica_sets = replica_sets
        self.snapshot_hash = snapshot_hash
        self.created_unix = time.time()
        self._inflight = 0
        self._lock = threading.Lock()

    def __enter__(self) -> "Routing":
        with self._lock:
            self._inflight += 1
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def range_index(self, address: int) -> int:
        return int(range_indices(self.ranges, np.array([address]))[0])


class ClusterCoordinator:
    """Scatter-gather front end over a fleet of :class:`ShardServer`."""

    # Cheap local reads (and admin) bypass admission control and the
    # response cache; "analytics" is store-backed, so caching on the
    # snapshot hash would hide newly analyzed generations anyway.
    always_admit = ("healthz", "stats", "metrics", "admin", "analytics")

    def __init__(
        self,
        routing: Routing,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 8192,
        max_inflight: int = 64,
        max_pending: int = 4096,
        max_batch: int = 512,
        batch_window_s: float = 0.002,
        retry_after_s: int = 1,
        shard_timeout_s: float = 5.0,
        hedge_delay_s: float = 0.05,
        stage_timeout_s: float = 300.0,
        health_interval_s: float = 0.5,
        fan_workers: int = 8,
        replica_workers: int = 16,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        bus: TelemetryBus | None = None,
        trace_sampler: TraceSampler | None = None,
        analytics_db: str | Path | None = None,
        analytics_campaign: str = "ingest",
    ) -> None:
        self._routing = routing
        self._analytics_db = (
            None if analytics_db is None else Path(analytics_db)
        )
        self._analytics_campaign = analytics_campaign
        self._analytics_store = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.bus = bus
        self.trace_sampler = trace_sampler
        self.cache = LruCache(cache_size)
        self.batcher = MicroBatcher(
            self._locate_lines_batch,
            max_batch=max_batch,
            max_wait_s=batch_window_s,
            max_pending=max_pending,
        )
        self._max_inflight = max_inflight
        self._retry_after_s = retry_after_s
        self._shard_timeout_s = shard_timeout_s
        self._hedge_delay_s = hedge_delay_s
        self._stage_timeout_s = stage_timeout_s
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._reload_lock = threading.Lock()
        self._started_unix = time.time()
        # Two pools so range-level fan-out tasks never wait on workers
        # they themselves occupy: ranges fan on one, replica tries
        # (including hedges) run on the other.
        self._fan_pool = ThreadPoolExecutor(
            max_workers=fan_workers, thread_name_prefix="coord-fan"
        )
        self._replica_pool = ThreadPoolExecutor(
            max_workers=replica_workers, thread_name_prefix="coord-replica"
        )
        self._health = HealthChecker(
            lambda: self._routing, interval_s=health_interval_s
        )
        self._httpd = _TcpServer((host, port), _Handler)
        self._httpd.app = self  # type: ignore[assignment]
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def routing(self) -> Routing:
        """The active routing generation (read-only view)."""
        return self._routing

    def start(self) -> "ClusterCoordinator":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="coord-accept",
            daemon=True,
        )
        self._thread.start()
        self._health.start()
        return self

    def stop(self) -> None:
        self._health.stop()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.batcher.close()
        self._fan_pool.shutdown(wait=False)
        self._replica_pool.shutdown(wait=False)
        for rset in self._routing.replica_sets:
            rset.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- admission -----------------------------------------------------------

    def _admit(self) -> bool:
        with self._inflight_lock:
            if self._inflight >= self._max_inflight:
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    @property
    def retry_after_s(self) -> int:
        return self._retry_after_s

    # -- request handling ----------------------------------------------------

    def handle_target(
        self, target: str, trace_parent: str = ""
    ) -> tuple[int, bytes, bytes]:
        """Answer one GET target; the shared transport's entry point."""
        path, _, raw_query = target.partition("?")
        endpoint = endpoint_of(path)
        start = time.perf_counter()
        sampled = bool(trace_parent) or (
            self.trace_sampler.should_sample()
            if self.trace_sampler is not None
            else True
        )
        if trace_parent:
            trace_id = trace_parent
        else:
            trace_id = (
                new_trace_id() if (sampled and self.tracer is not None) else ""
            )
        shed_able = endpoint not in self.always_admit
        admitted = False
        status = 500
        try:
            if endpoint == "metrics":
                status = 200
                return status, self._merged_metrics(), _TEXT_METRICS_TYPE
            if shed_able:
                admitted = self._admit()
                if not admitted:
                    status = 503
                    self.metrics.counter("coord.shed").add(1)
                    return (
                        status,
                        encode_json(
                            {
                                "error": "over capacity",
                                "retry_after_s": self._retry_after_s,
                            }
                        ),
                        _JSON_TYPE,
                    )
            routing = self._routing
            if shed_able:
                hit, cached = self.cache.get((target, routing.snapshot_hash))
                if hit:
                    status = 200
                    self.metrics.counter("coord.cache.hits").add(1)
                    return status, cached, _JSON_TYPE
                self.metrics.counter("coord.cache.misses").add(1)
            try:
                with routing:
                    if self.tracer is not None and sampled and shed_able:
                        context = TraceContext(trace_id=trace_id)
                        with use_trace_context(context), self.tracer.span(
                            f"coord.{endpoint}"
                        ):
                            status, payload = self._dispatch(
                                endpoint, path, raw_query, routing, trace_id
                            )
                    else:
                        status, payload = self._dispatch(
                            endpoint, path, raw_query, routing, trace_id
                        )
            except ShardShedding as exc:
                # Every replica of some range is shedding: relay the
                # shard's own 503 envelope so clients back off the same
                # way they would against a single overloaded server.
                status = 503
                self.metrics.counter("coord.upstream_shed").add(1)
                return status, exc.body, _JSON_TYPE
            except ShardUnavailable as exc:
                status = 503
                self.metrics.counter("coord.unavailable").add(1)
                return (
                    status,
                    encode_json(
                        {
                            "error": str(exc),
                            "retry_after_s": self._retry_after_s,
                        }
                    ),
                    _JSON_TYPE,
                )
            except OverloadError as exc:
                status = 503
                self.metrics.counter("coord.shed").add(1)
                return (
                    status,
                    encode_json(
                        {
                            "error": str(exc),
                            "retry_after_s": self._retry_after_s,
                        }
                    ),
                    _JSON_TYPE,
                )
            except ServeError as exc:
                status, payload = 400, {"error": str(exc)}
            except (AnalysisError, GeoError) as exc:
                status, payload = 404, {"error": str(exc)}
            body = payload if isinstance(payload, bytes) else encode_json(payload)
            if shed_able and status == 200:
                self.cache.put((target, routing.snapshot_hash), body)
            return status, body, _JSON_TYPE
        finally:
            if admitted:
                self._release()
            wall_ms = (time.perf_counter() - start) * 1e3
            self.metrics.counter(f"coord.requests.{endpoint}").add(1)
            self.metrics.histogram(f"coord.latency_ms.{endpoint}").observe(
                wall_ms
            )
            self._publish_access(endpoint, target, status, wall_ms, trace_id)

    def _publish_access(
        self,
        endpoint: str,
        target: str,
        status: int,
        wall_ms: float,
        trace_id: str,
    ) -> None:
        fields = {
            "endpoint": endpoint,
            "target": target,
            "status": status,
            "ms": round(wall_ms, 3),
            "trace_id": trace_id,
            "sampled": bool(trace_id),
            "component": "coordinator",
        }
        if self.bus is not None:
            self.bus.publish("access", **fields)
        else:
            _bus_publish("access", **fields)

    def _dispatch(
        self,
        endpoint: str,
        path: str,
        raw_query: str,
        routing: Routing,
        trace_id: str,
    ):
        params = parse_query(raw_query)
        if endpoint == "healthz":
            return 200, {
                "status": "ok",
                "version": __version__,
                "snapshot_hash": routing.snapshot_hash,
                "gen": routing.gen,
                "built_unix": round(routing.created_unix, 3),
                "uptime_s": round(time.time() - self._started_unix, 3),
            }
        if endpoint == "stats":
            return 200, self.stats()
        if endpoint == "admin":
            return self._handle_admin(path, params)
        if endpoint == "analytics":
            return self._handle_analytics(path, params, routing)
        if endpoint == "locate":
            return self._handle_locate(params, routing, trace_id)
        if endpoint == "near":
            return self._handle_near(
                params, path, raw_query, routing, trace_id
            )
        if endpoint == "as":
            return self._handle_as(path, raw_query, routing, trace_id)
        if endpoint == "distance-preference":
            return self._handle_preference(params, routing, trace_id)
        return 404, {"error": f"unknown endpoint {path!r}"}

    # -- locate --------------------------------------------------------------

    def _handle_locate(
        self, params: dict[str, str], routing: Routing, trace_id: str
    ):
        if "addresses" in params:
            addresses = parse_address_list(params["addresses"])
            lines = self._fetch_locate_lines(routing, addresses, trace_id)
            # Splicing pre-encoded lines reproduces the single-process
            # body byte for byte: compact JSON composes.
            return 200, b'{"results":[' + b",".join(lines) + b"]}"
        if "address" not in params:
            raise ServeError("locate requires ?address=N (or ?addresses=a,b)")
        address = int_param(params["address"], "address")
        future = self.batcher.submit(address)
        self.metrics.gauge("coord.queue_depth").set(self.batcher.queue_depth)
        line = future.result()
        if line == b"null":
            return 404, {"error": locate_miss_message(address)}
        return 200, line

    def _locate_lines_batch(self, addresses: list[int]) -> list[bytes]:
        """The coordinator batcher's compute fn: route, fan, reassemble."""
        routing = self._routing
        with routing:
            return self._fetch_locate_lines(routing, list(addresses), "")

    def _fetch_locate_lines(
        self, routing: Routing, addresses: list[int], trace_id: str
    ) -> list[bytes]:
        owners = range_indices(
            routing.ranges, np.asarray(addresses, dtype=np.int64)
        )
        groups: dict[int, list[int]] = {}
        for position, owner in enumerate(owners):
            groups.setdefault(int(owner), []).append(position)
        futures = {}
        for owner, positions in groups.items():
            joined = ",".join(str(addresses[p]) for p in positions)
            target = (
                f"/internal/locate-lines?addresses={joined}"
                f"&_gen={routing.gen}"
            )
            futures[owner] = self._fan_pool.submit(
                self._range_request, routing, owner, target, trace_id
            )
        lines: list[bytes] = [b""] * len(addresses)
        for owner, positions in groups.items():
            status, body = futures[owner].result()
            if status != 200:
                raise ShardUnavailable(
                    f"locate fan-out to range {owner} answered {status}"
                )
            shard_lines = body.split(b"\n")
            if len(shard_lines) != len(positions):
                raise ShardUnavailable(
                    f"range {owner} returned {len(shard_lines)} lines "
                    f"for {len(positions)} addresses"
                )
            for position, line in zip(positions, shard_lines):
                lines[position] = line
        return lines

    # -- scatter-gather ------------------------------------------------------

    def _range_request(
        self, routing: Routing, owner: int, target: str, trace_id: str
    ) -> tuple[int, bytes]:
        return request_with_failover(
            routing.replica_sets[owner],
            target,
            executor=self._replica_pool,
            trace_id=trace_id,
            timeout_s=self._shard_timeout_s,
            hedge_delay_s=self._hedge_delay_s,
            metrics=self.metrics,
        )

    def _fan_all(
        self, routing: Routing, target: str, trace_id: str
    ) -> list[tuple[int, bytes]]:
        """The same pinned target against every shard range, concurrently."""
        futures = [
            self._fan_pool.submit(
                self._range_request, routing, owner, target, trace_id
            )
            for owner in range(len(routing.ranges))
        ]
        return [future.result() for future in futures]

    @staticmethod
    def _pinned(path: str, raw_query: str, gen: int) -> str:
        separator = "&" if raw_query else ""
        return f"{path}?{raw_query}{separator}_gen={gen}"

    def _handle_near(
        self,
        params: dict[str, str],
        path: str,
        raw_query: str,
        routing: Routing,
        trace_id: str,
    ):
        query, limit = parse_near_query(params)
        target = self._pinned(path, raw_query, routing.gen)
        responses = self._fan_all(routing, target, trace_id)
        for status, body in responses:
            if status != 200:
                # Parameter validation is data-independent, so every
                # shard produced this same error body — relay it.
                return status, body
        merged: list[dict] = []
        for _, body in responses:
            merged.extend(json.loads(body)["results"])
        merged.sort(key=lambda record: (record["miles"], record["address"]))
        return 200, {"query": query, "results": merged[:limit]}

    def _handle_as(
        self, path: str, raw_query: str, routing: Routing, trace_id: str
    ):
        parse_as_path(path)  # identical 400s before any fan-out
        target = self._pinned(path, raw_query, routing.gen)
        responses = self._fan_all(routing, target, trace_id)
        for status, body in responses:
            if status == 200:
                # Exactly one shard owns an AS (minimum-address rule);
                # its precomputed full-snapshot record relays verbatim.
                return status, body
        return responses[0]

    def _handle_preference(
        self, params: dict[str, str], routing: Routing, trace_id: str
    ):
        name = params.get("region")
        if not name:
            raise ServeError(
                "distance-preference requires ?region= (e.g. US, Europe, Japan)"
            )
        region = region_by_name(name)
        target = (
            f"/internal/pref-partial?region={quote(name, safe='')}"
            f"&_gen={routing.gen}"
        )
        responses = self._fan_all(routing, target, trace_id)
        for status, body in responses:
            if status != 200:
                # Too-few-nodes is a full-region fact every shard
                # computes identically from the coordinate sidecar.
                return status, body
        partials = [json.loads(body) for _, body in responses]
        link_counts = np.sum(
            [p["link_counts"] for p in partials], axis=0, dtype=np.int64
        )
        pair_counts = np.sum(
            [p["pair_counts"] for p in partials], axis=0, dtype=np.int64
        )
        pref = preference_from_counts(
            region.name,
            partials[0]["bin_miles"],
            link_counts,
            pair_counts,
            partials[0]["n_nodes"],
        )
        return 200, preference_payload(pref, params)

    # -- observability -------------------------------------------------------

    def _merged_metrics(self) -> bytes:
        bodies = [render_prometheus(self.metrics)]
        routing = self._routing
        for rset in routing.replica_sets:
            for idx, client in enumerate(rset.clients):
                if not rset.is_healthy(idx):
                    continue
                try:
                    status, body = client.get("/metrics", timeout_s=2.0)
                except ShardUnavailable:
                    continue
                if status == 200:
                    bodies.append(body.decode("utf-8", errors="replace"))
        return merge_expositions(bodies).encode("utf-8")

    def stats(self) -> dict:
        routing = self._routing
        stats = {
            "cluster": {
                "gen": routing.gen,
                "snapshot_hash": routing.snapshot_hash,
                "built_unix": round(routing.created_unix, 3),
                "inflight_pins": routing.inflight,
                "ranges": [
                    {
                        "range": rng.label(),
                        "n_healthy": rset.n_healthy,
                        "replicas": rset.snapshot(),
                    }
                    for rng, rset in zip(
                        routing.ranges, routing.replica_sets
                    )
                ],
            },
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
            "inflight": self.inflight,
            "max_inflight": self._max_inflight,
            "shed_requests": int(self.metrics.counter("coord.shed").value),
            "queue_depth": self.batcher.queue_depth,
            "uptime_s": round(time.time() - self._started_unix, 3),
            "metrics": self.metrics.snapshot(),
        }
        analytics = self._analytics_stats()
        if analytics is not None:
            stats["analytics"] = analytics
        return stats

    # -- hot snapshot swap ---------------------------------------------------

    def _handle_admin(self, path: str, params: dict[str, str]):
        _, _, verb = path.lstrip("/").partition("/")
        if verb == "reload":
            snapshot = params.get("snapshot")
            if not snapshot:
                raise ServeError("reload requires ?snapshot=PATH")
            return 200, self.reload(snapshot)
        if verb == "status":
            return 200, self.stats()
        return 404, {"error": f"unknown admin endpoint {path!r}"}

    # -- continuous analytics ------------------------------------------------

    def _analytics(self):
        """The lazily opened metric store (None when not configured)."""
        if self._analytics_db is None:
            return None
        if self._analytics_store is None:
            from repro.analytics import MetricStore

            self._analytics_store = MetricStore(self._analytics_db)
        return self._analytics_store

    def _handle_analytics(
        self, path: str, params: dict[str, str], routing: Routing
    ):
        """``/analytics/latest`` and ``/analytics/history`` reads.

        Store-backed, not scatter-gather: the analytics series is
        global (the ingest observer computes it on the full snapshot),
        so the coordinator answers from the shared metric store.
        """
        store = self._analytics()
        if store is None:
            raise ServeError(
                "analytics is not configured (start with --analytics-db)"
            )
        campaign_id = store.campaign_id(self._analytics_campaign)
        if campaign_id is None:
            raise AnalysisError(
                f"no analytics recorded for campaign "
                f"{self._analytics_campaign!r}"
            )
        _, _, verb = path.lstrip("/").partition("/")
        if verb == "latest":
            record = store.latest(campaign_id)
            if record is None:
                raise AnalysisError("no generation analyzed yet")
            return 200, {
                "campaign": self._analytics_campaign,
                **record,
                "in_sync": record["snapshot_hash"] == routing.snapshot_hash,
                "alerts": store.alerts(campaign_id, limit=20),
            }
        if verb == "history":
            metric = params.get("metric")
            if not metric:
                raise ServeError("history requires ?metric=NAME")
            limit = int_param(params.get("limit", "50"), "limit")
            if limit < 1:
                raise ServeError("limit must be >= 1")
            points = store.history(campaign_id, metric, limit=limit)
            if not points:
                raise AnalysisError(
                    f"no recorded values for metric {metric!r}"
                )
            return 200, {
                "campaign": self._analytics_campaign,
                "metric": metric,
                "points": [
                    {"gen": gen, "value": value} for gen, value in points
                ],
            }
        return 404, {"error": f"unknown analytics endpoint {path!r}"}

    def _analytics_stats(self) -> dict | None:
        """The ``stats()`` analytics block (None when unconfigured)."""
        store = self._analytics()
        if store is None:
            return None
        routing = self._routing
        block: dict = {
            "campaign": self._analytics_campaign,
            "latest_gen": None,
            "in_sync": False,
        }
        campaign_id = store.campaign_id(self._analytics_campaign)
        if campaign_id is None:
            return block
        record = store.latest(campaign_id)
        if record is None:
            return block
        block["latest_gen"] = record["gen"]
        block["in_sync"] = record["snapshot_hash"] == routing.snapshot_hash
        # The store does not know the cluster's generation numbering
        # (a reload bumps routing.gen independently), so lag is exact
        # only when the hashes line up.
        block["lag"] = 0 if block["in_sync"] else None
        block["age_s"] = round(time.time() - record["created_unix"], 3)
        block["alerts"] = len(store.alerts(campaign_id, limit=10_000))
        return block

    def reload(self, snapshot_path: str | Path) -> dict:
        """Hot-swap the whole fleet onto a new snapshot, dropping nothing.

        Stage on every reachable replica (the expensive part — the old
        generation serves throughout), verify every stage reported one
        consistent snapshot hash, activate, then atomically flip the
        routing object.  Requests pinned to the old generation drain
        before it is retired.  A replica that is down through the
        reload stays ejected: its ``/healthz`` hash no longer matches
        the routing generation, so the health checker will not readmit
        it until a later reload re-stages it.

        Raises:
            ServeError: when planning fails, a *healthy* replica fails
                to stage, any range would end up with no staged
                replica, or the staged hashes disagree.
        """
        with self._reload_lock:
            old = self._routing
            new_gen = old.gen + 1
            path = Path(snapshot_path)
            ranges = partition_bounds(
                _snapshot_addresses(path), len(old.ranges)
            )
            staged: list[ShardClient] = []
            hashes: set[str] = set()
            for slot, rng in enumerate(ranges):
                rset = old.replica_sets[slot]
                staged_in_slot = 0
                for idx, client in enumerate(rset.clients):
                    target = _stage_target(path, new_gen, rng)
                    try:
                        status, body = client.get(
                            target, timeout_s=self._stage_timeout_s
                        )
                    except ShardUnavailable as exc:
                        if rset.is_healthy(idx):
                            raise ServeError(
                                f"reload aborted: staging on {client.url} "
                                f"failed: {exc}"
                            ) from exc
                        continue
                    if status != 200:
                        raise ServeError(
                            f"reload aborted: stage on {client.url} answered "
                            f"{status}: {body[:200].decode('utf-8', 'replace')}"
                        )
                    hashes.add(json.loads(body)["snapshot_hash"])
                    staged.append(client)
                    staged_in_slot += 1
                if staged_in_slot == 0:
                    raise ServeError(
                        f"reload aborted: no replica of range {rng.label()} "
                        "could stage the new snapshot"
                    )
            if len(hashes) != 1:
                raise ServeError(
                    f"reload aborted: inconsistent snapshot hashes {hashes}"
                )
            for client in staged:
                status, body = client.get(
                    f"/admin/activate?gen={new_gen}", timeout_s=10.0
                )
                if status != 200:
                    raise ServeError(
                        f"reload aborted: activate on {client.url} answered "
                        f"{status}"
                    )
            self._routing = Routing(
                new_gen, ranges, old.replica_sets, next(iter(hashes))
            )
            # Zero dropped requests: old-generation pins drain before
            # the shards may forget that generation.
            deadline = time.monotonic() + 5.0
            while old.inflight > 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            for client in staged:
                try:
                    client.get(f"/admin/retire?keep={new_gen}", timeout_s=10.0)
                except ShardUnavailable:
                    pass
            self.metrics.counter("coord.reloads").add(1)
            return {
                "gen": new_gen,
                "snapshot_hash": next(iter(hashes)),
                "ranges": [rng.label() for rng in ranges],
                "staged_replicas": len(staged),
            }


# --- fleet construction ------------------------------------------------------


def _snapshot_addresses(path: Path) -> np.ndarray:
    """The address column of a snapshot, loaded as lazily as possible."""
    if path.suffix == ".npz":
        try:
            with np.load(path, allow_pickle=False) as payload:
                return np.asarray(payload["addresses"], dtype=np.int64)
        except (OSError, KeyError, ValueError) as exc:
            raise ServeError(
                f"cannot read addresses from {path}: {exc}"
            ) from exc
    from repro.datasets.serialize import load_dataset

    return load_dataset(path).addresses


def _stage_target(path: Path, gen: int, rng: ShardRange) -> str:
    target = (
        f"/admin/stage?snapshot={quote(str(path), safe='')}&gen={gen}"
    )
    if rng.addr_lo is not None:
        target += f"&lo={rng.addr_lo}"
    if rng.addr_hi is not None:
        target += f"&hi={rng.addr_hi}"
    return target


def build_routing(
    ranges: list[ShardRange],
    urls_by_slot: list[list[str]],
    *,
    gen: int = 1,
    timeout_s: float = 5.0,
    wait_timeout_s: float = 60.0,
) -> Routing:
    """Connect to a freshly spawned fleet and assemble its routing table.

    Waits for every replica's ``/healthz``, verifies all replicas agree
    on one snapshot hash, and returns the generation-``gen`` routing.

    Raises:
        ServeError: on timeout or on a snapshot-hash mismatch (a shard
            was pointed at the wrong file).
    """
    if len(ranges) != len(urls_by_slot):
        raise ServeError("one url list per shard range required")
    replica_sets = [
        ReplicaSet([ShardClient(url, timeout_s) for url in urls])
        for urls in urls_by_slot
    ]
    hashes: set[str] = set()
    deadline = time.monotonic() + wait_timeout_s
    for rset in replica_sets:
        for client in rset.clients:
            while True:
                payload = client.probe(timeout_s=2.0)
                if payload is not None:
                    hashes.add(payload["snapshot_hash"])
                    break
                if time.monotonic() > deadline:
                    raise ServeError(
                        f"shard {client.url} not healthy after "
                        f"{wait_timeout_s:.0f}s"
                    )
                time.sleep(0.05)
    if len(hashes) != 1:
        raise ServeError(
            f"shards disagree on the snapshot: hashes {hashes}"
        )
    return Routing(gen, ranges, replica_sets, next(iter(hashes)))
