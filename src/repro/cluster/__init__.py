"""Sharded snapshot serving: coordinator, shard workers, failover.

The single-process :class:`~repro.serve.server.SnapshotServer` answers
every query from one index in one GIL — a hard ceiling on snapshot
size and a single failure domain.  This package splits the snapshot
across shard worker processes by contiguous interface-address range
and puts a scatter-gather coordinator in front, answering the exact
single-process protocol byte for byte:

- :mod:`repro.cluster.plan` — quantile partitioning of the address
  space into :class:`ShardRange` slices;
- :mod:`repro.cluster.shard` — :class:`ShardServer`, a partition-backed
  snapshot server with the coordinator's internal scatter-gather plane
  and the generation-based hot-swap admin plane;
- :mod:`repro.cluster.client` — :class:`ShardClient` keep-alive pools,
  :class:`ReplicaSet` health/ejection bookkeeping, the
  :class:`HealthChecker` probe loop, and hedged
  :func:`request_with_failover`;
- :mod:`repro.cluster.coordinator` — :class:`ClusterCoordinator`:
  routing, merging, replica failover, hot snapshot reload, and
  fleet-wide ``/metrics`` / ``/stats``;
- :mod:`repro.cluster.manager` — :class:`ShardManager`: shard process
  spawning and lifecycle for ``repro cluster serve``, the smoke gate,
  and the benchmark.

``repro cluster serve/shard/status/reload`` are the CLI entry points;
``scripts/cluster_smoke.py`` is the CI gate and
``benchmarks/bench_cluster.py`` the load generator.
"""

from repro.cluster.client import (
    HealthChecker,
    ReplicaSet,
    ShardClient,
    ShardShedding,
    ShardUnavailable,
    request_with_failover,
)
from repro.cluster.coordinator import (
    ClusterCoordinator,
    Routing,
    build_routing,
)
from repro.cluster.manager import ShardManager, ShardProcess
from repro.cluster.plan import ShardRange, partition_bounds, range_indices
from repro.cluster.shard import ShardServer

__all__ = [
    "ClusterCoordinator",
    "HealthChecker",
    "ReplicaSet",
    "Routing",
    "ShardClient",
    "ShardManager",
    "ShardProcess",
    "ShardRange",
    "ShardServer",
    "ShardShedding",
    "ShardUnavailable",
    "build_routing",
    "partition_bounds",
    "range_indices",
    "request_with_failover",
]
