"""Shard-side transport: pooled keep-alive clients, replica health.

Three layers, bottom up:

- :class:`ShardClient` — a raw-socket HTTP/1.1 GET client to one shard
  replica with a small keep-alive connection pool (the coordinator's
  fan-out makes several concurrent requests to the same replica) and a
  dial *blackout*: after a failed dial the replica is considered dark
  for a jittered-backoff window and requests fail fast instead of each
  paying a connect timeout.
- :class:`ReplicaSet` — the replicas serving one shard range: healthy
  rotation, ejection after consecutive failures, readmission, and
  per-replica latency accounting for ``/stats``.
- :class:`HealthChecker` — one background thread probing every replica's
  ``/healthz`` and comparing its ``snapshot_hash`` against the active
  routing generation, so a replica that crashed through a hot reload is
  not readmitted while it still serves the old snapshot.

:func:`request_with_failover` is the coordinator's only read path: try
the next healthy replica, *hedge* to a second one when the first is
slow, fail over sequentially on errors, and treat a ``503`` (shard
shedding load) as retry-elsewhere-but-don't-eject.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Executor, wait
from urllib.parse import urlsplit

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve.retry import BackoffPolicy
from repro.serve.server import TRACE_HEADER


class ShardUnavailable(ServeError):
    """A replica (or a whole replica set) could not answer."""


class ShardShedding(ShardUnavailable):
    """A replica answered 503: alive, but shedding load."""

    def __init__(self, message: str, body: bytes) -> None:
        super().__init__(message)
        self.body = body


class ShardClient:
    """Pooled keep-alive HTTP GET client for one shard replica."""

    def __init__(
        self,
        url: str,
        timeout_s: float = 5.0,
        backoff: BackoffPolicy | None = None,
        max_idle: int = 8,
    ) -> None:
        parts = urlsplit(url)
        if not parts.hostname or not parts.port:
            raise ServeError(f"shard url needs host and port, got {url!r}")
        self.url = url.rstrip("/")
        self.host = parts.hostname
        self.port = int(parts.port)
        self.timeout_s = timeout_s
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._max_idle = max_idle
        self._idle: list[tuple[socket.socket, object]] = []
        self._lock = threading.Lock()
        self._dial_failures = 0
        self._blackout_until = 0.0

    # -- connection pool -----------------------------------------------------

    def _dial(self, timeout_s: float) -> tuple[socket.socket, object]:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=timeout_s
            )
        except OSError as exc:
            with self._lock:
                delay = self.backoff.delay_s(min(self._dial_failures, 6))
                self._dial_failures += 1
                self._blackout_until = time.monotonic() + delay
            raise ShardUnavailable(
                f"cannot reach {self.url}: {exc}"
            ) from exc
        with self._lock:
            self._dial_failures = 0
            self._blackout_until = 0.0
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock, sock.makefile("rb")

    def _checkout(
        self, timeout_s: float, bypass_blackout: bool
    ) -> tuple[tuple[socket.socket, object], bool]:
        """An idle pooled connection, or a fresh dial.

        Returns ``(connection, reused)``; during a dial blackout a
        non-bypassing caller fails immediately so failover moves on
        without paying a connect timeout per request.
        """
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
            blackout = time.monotonic() < self._blackout_until
        if blackout and not bypass_blackout:
            raise ShardUnavailable(
                f"{self.url} is in dial blackout after failed connects"
            )
        return self._dial(timeout_s), False

    def _checkin(self, conn: tuple[socket.socket, object]) -> None:
        with self._lock:
            if len(self._idle) < self._max_idle:
                self._idle.append(conn)
                return
        self._close(conn)

    @staticmethod
    def _close(conn: tuple[socket.socket, object]) -> None:
        sock, rfile = conn
        try:
            rfile.close()  # type: ignore[attr-defined]
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def close(self) -> None:
        """Drop every pooled connection."""
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            self._close(conn)

    # -- requests ------------------------------------------------------------

    def get(
        self,
        target: str,
        trace_id: str = "",
        timeout_s: float | None = None,
        bypass_blackout: bool = False,
    ) -> tuple[int, bytes]:
        """One GET round trip; returns ``(status, body)``.

        A request that fails on a *reused* connection is retried once on
        a fresh dial — the ordinary keep-alive race where the server
        closed an idle connection between our requests.

        Raises:
            ShardUnavailable: when the replica cannot be reached or the
                connection breaks mid-exchange.
        """
        timeout = self.timeout_s if timeout_s is None else timeout_s
        conn, reused = self._checkout(timeout, bypass_blackout)
        try:
            status, body, keep = self._roundtrip(conn, target, trace_id, timeout)
        except (OSError, ConnectionError, ShardUnavailable) as exc:
            self._close(conn)
            if not reused:
                if isinstance(exc, ShardUnavailable):
                    raise
                raise ShardUnavailable(
                    f"request to {self.url} failed: {exc}"
                ) from exc
            conn, _ = self._checkout(timeout, bypass_blackout)
            try:
                status, body, keep = self._roundtrip(
                    conn, target, trace_id, timeout
                )
            except (OSError, ConnectionError) as retry_exc:
                self._close(conn)
                raise ShardUnavailable(
                    f"request to {self.url} failed: {retry_exc}"
                ) from retry_exc
        if keep:
            self._checkin(conn)
        else:
            self._close(conn)
        return status, body

    def _roundtrip(
        self,
        conn: tuple[socket.socket, object],
        target: str,
        trace_id: str,
        timeout_s: float,
    ) -> tuple[int, bytes, bool]:
        sock, rfile = conn
        sock.settimeout(timeout_s)
        head = (
            f"GET {target} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
        )
        if trace_id:
            head += f"{TRACE_HEADER}: {trace_id}\r\n"
        head += "\r\n"
        sock.sendall(head.encode("latin-1"))
        status_line = rfile.readline(8192)  # type: ignore[attr-defined]
        if not status_line:
            raise ConnectionError("connection closed before response")
        try:
            status = int(status_line.split(maxsplit=2)[1])
        except (IndexError, ValueError):
            raise ConnectionError(
                f"malformed status line {status_line!r}"
            ) from None
        length = 0
        keep = True
        while True:
            header = rfile.readline(8192)  # type: ignore[attr-defined]
            if header in (b"\r\n", b"\n", b""):
                break
            lowered = header.decode("latin-1").strip().lower()
            if lowered.startswith("content-length:"):
                length = int(lowered.partition(":")[2].strip())
            elif lowered.startswith("connection:"):
                keep = "close" not in lowered
        body = rfile.read(length)  # type: ignore[attr-defined]
        if len(body) != length:
            raise ConnectionError("connection closed mid-body")
        return status, body, keep

    def probe(self, timeout_s: float = 1.0) -> dict | None:
        """``/healthz`` payload, or None when unreachable.

        Bypasses the dial blackout — the health checker is exactly the
        caller that must notice a replica coming back.
        """
        try:
            status, body = self.get(
                "/healthz", timeout_s=timeout_s, bypass_blackout=True
            )
            if status != 200:
                return None
            return json.loads(body)
        except (ShardUnavailable, json.JSONDecodeError):
            return None


class ReplicaSet:
    """The replicas serving one shard range, with health bookkeeping."""

    def __init__(
        self, clients: list[ShardClient], eject_after: int = 3
    ) -> None:
        if not clients:
            raise ServeError("a replica set needs at least one client")
        self.clients = clients
        self.eject_after = eject_after
        self._lock = threading.Lock()
        self._healthy = [True] * len(clients)
        self._consecutive = [0] * len(clients)
        self._requests = [0] * len(clients)
        self._ewma_ms = [0.0] * len(clients)
        self._rr = 0

    def candidates(self) -> list[tuple[int, ShardClient]]:
        """Replicas to try, healthy first, round-robin rotated.

        Unhealthy replicas are appended last instead of dropped: when
        every replica is ejected, trying a dead one (fast, thanks to
        the dial blackout) beats refusing outright.
        """
        with self._lock:
            self._rr += 1
            offset = self._rr
            healthy = [i for i, ok in enumerate(self._healthy) if ok]
            dark = [i for i, ok in enumerate(self._healthy) if not ok]
        if healthy:
            pivot = offset % len(healthy)
            healthy = healthy[pivot:] + healthy[:pivot]
        return [(i, self.clients[i]) for i in healthy + dark]

    def record_success(self, idx: int, latency_ms: float) -> None:
        """A replica answered: reset failures, readmit, note latency."""
        with self._lock:
            self._consecutive[idx] = 0
            self._healthy[idx] = True
            self._requests[idx] += 1
            prior = self._ewma_ms[idx]
            self._ewma_ms[idx] = (
                latency_ms if prior == 0.0 else 0.8 * prior + 0.2 * latency_ms
            )

    def record_failure(self, idx: int) -> None:
        """A replica failed; ejected after ``eject_after`` consecutive."""
        with self._lock:
            self._consecutive[idx] += 1
            if self._consecutive[idx] >= self.eject_after:
                self._healthy[idx] = False

    def record_probe(self, idx: int, ok: bool) -> None:
        """A health-check outcome: flips health without touching the
        request or latency accounting (probes are not traffic)."""
        with self._lock:
            if ok:
                self._consecutive[idx] = 0
                self._healthy[idx] = True
            else:
                self._consecutive[idx] += 1
                if self._consecutive[idx] >= self.eject_after:
                    self._healthy[idx] = False

    def is_healthy(self, idx: int) -> bool:
        with self._lock:
            return self._healthy[idx]

    @property
    def n_healthy(self) -> int:
        with self._lock:
            return sum(self._healthy)

    def snapshot(self) -> list[dict]:
        """JSON-ready per-replica health/latency rows for ``/stats``."""
        with self._lock:
            return [
                {
                    "url": client.url,
                    "healthy": self._healthy[i],
                    "consecutive_failures": self._consecutive[i],
                    "requests": self._requests[i],
                    "ewma_latency_ms": round(self._ewma_ms[i], 3),
                }
                for i, client in enumerate(self.clients)
            ]

    def close(self) -> None:
        for client in self.clients:
            client.close()


def _try_replica(
    rset: ReplicaSet,
    idx: int,
    client: ShardClient,
    target: str,
    trace_id: str,
    timeout_s: float | None,
) -> tuple[int, bytes]:
    start = time.perf_counter()
    try:
        status, body = client.get(target, trace_id, timeout_s=timeout_s)
    except ShardUnavailable:
        rset.record_failure(idx)
        raise
    rset.record_success(idx, (time.perf_counter() - start) * 1e3)
    if status == 503:
        # Alive but shedding: retry elsewhere, never eject for load.
        raise ShardShedding(f"{client.url} is shedding load", body)
    return status, body


def request_with_failover(
    rset: ReplicaSet,
    target: str,
    *,
    executor: Executor,
    trace_id: str = "",
    timeout_s: float | None = None,
    hedge_delay_s: float = 0.05,
    metrics: MetricsRegistry | None = None,
) -> tuple[int, bytes]:
    """One logical GET against a replica set.

    Launches the first candidate, hedges to the next after
    ``hedge_delay_s`` without an answer, and fails over on errors until
    a replica responds.  The first completed response wins; late
    duplicates are discarded harmlessly.

    Raises:
        ShardUnavailable: when every replica failed (or, with
            :class:`ShardShedding`, when every replica shed — the
            caller relays that 503 body to its own client).
    """
    candidates = iter(rset.candidates())
    pending: set = set()
    errors: list[BaseException] = []
    shed: ShardShedding | None = None
    launched = 0
    while True:
        nxt = next(candidates, None)
        if nxt is not None:
            idx, client = nxt
            pending.add(
                executor.submit(
                    _try_replica, rset, idx, client, target, trace_id, timeout_s
                )
            )
            launched += 1
            if launched > 1 and metrics is not None:
                kind = "hedges" if not errors and shed is None else "failovers"
                metrics.counter(f"coord.{kind}").add(1)
        elif not pending:
            if shed is not None:
                raise shed
            detail = "; ".join(str(e) for e in errors) or "no replicas"
            raise ShardUnavailable(f"shard range unavailable: {detail}")
        more_candidates = nxt is not None
        done, pending = wait(
            pending,
            timeout=hedge_delay_s if more_candidates else None,
            return_when=FIRST_COMPLETED,
        )
        for future in done:
            try:
                return future.result()
            except ShardShedding as exc:
                shed = exc
            except ShardUnavailable as exc:
                errors.append(exc)


class HealthChecker(threading.Thread):
    """Background probe loop: ejects dead replicas, readmits live ones.

    ``routing_fn`` returns the *current* routing object each cycle, so
    a hot snapshot swap is picked up without restarting the thread.  A
    replica is counted healthy only when its ``/healthz`` answers *and*
    reports the routing generation's ``snapshot_hash`` — a replica that
    was down through a reload keeps serving the old snapshot and must
    stay ejected until the next reload re-stages it.
    """

    def __init__(
        self,
        routing_fn,
        interval_s: float = 0.5,
        probe_timeout_s: float = 1.0,
    ) -> None:
        super().__init__(name="cluster-health", daemon=True)
        self._routing_fn = routing_fn
        self._interval_s = interval_s
        self._probe_timeout_s = probe_timeout_s
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval_s):
            routing = self._routing_fn()
            if routing is None:
                continue
            for rset in routing.replica_sets:
                for idx, client in enumerate(rset.clients):
                    payload = client.probe(self._probe_timeout_s)
                    ok = payload is not None and payload.get(
                        "snapshot_hash"
                    ) == routing.snapshot_hash
                    rset.record_probe(idx, ok)
                    if self._stop_event.is_set():
                        return

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)
