"""Shard process lifecycle: spawn, banner handshake, kill, reap.

:class:`ShardManager` turns one snapshot file into a running fleet:
plan the address ranges, spawn ``repro cluster shard`` worker
processes (R replicas per range, each binding an ephemeral port), and
read each worker's one-line startup banner to learn its URL and pid.
The manager never speaks HTTP — connecting and health is the
coordinator's job — but it owns the OS processes, so the smoke test's
SIGKILL-a-replica scenario and clean shutdown both go through here.
"""

from __future__ import annotations

import os
import re
import select
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.plan import ShardRange, partition_bounds
from repro.errors import ServeError

#: The worker's startup banner; the manager parses url and pid from it.
BANNER_RE = re.compile(
    r"shard pid=(?P<pid>\d+) gen=(?P<gen>\d+) "
    r"range=\[(?P<lo>[^,]+),(?P<hi>[^)]+)\) on (?P<url>http://\S+)"
)


@dataclass
class ShardProcess:
    """One running shard replica."""

    slot: int
    replica: int
    range: ShardRange
    proc: subprocess.Popen
    url: str
    pid: int

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None


class ShardManager:
    """Spawns and owns the shard worker processes for one fleet."""

    def __init__(
        self,
        snapshot: str | Path,
        n_ranges: int = 2,
        replicas: int = 2,
        *,
        host: str = "127.0.0.1",
        gen: int = 1,
        banner_timeout_s: float = 120.0,
        python: str | None = None,
        sidecar_dir: str | Path | None = None,
    ) -> None:
        if replicas < 1:
            raise ServeError(f"replicas must be >= 1, got {replicas}")
        self.snapshot = Path(snapshot)
        self.n_ranges = n_ranges
        self.replicas = replicas
        self.host = host
        self.gen = gen
        self.sidecar_dir = (
            Path(sidecar_dir) if sidecar_dir is not None else None
        )
        self.banner_timeout_s = banner_timeout_s
        self.python = python or sys.executable
        self.ranges: list[ShardRange] = []
        self.shards: list[ShardProcess] = []

    def start(self) -> list[list[str]]:
        """Spawn the fleet; returns replica URLs grouped by range slot.

        Raises:
            ServeError: when a worker dies or fails to print its banner
                within the timeout.
        """
        from repro.cluster.coordinator import _snapshot_addresses

        self.ranges = partition_bounds(
            _snapshot_addresses(self.snapshot), self.n_ranges
        )
        procs: list[tuple[int, int, ShardRange, subprocess.Popen]] = []
        try:
            for slot, rng in enumerate(self.ranges):
                for replica in range(self.replicas):
                    procs.append(
                        (slot, replica, rng, self._spawn(rng))
                    )
            for slot, replica, rng, proc in procs:
                banner = _read_banner(proc, self.banner_timeout_s)
                self.shards.append(
                    ShardProcess(
                        slot=slot,
                        replica=replica,
                        range=rng,
                        proc=proc,
                        url=banner["url"],
                        pid=int(banner["pid"]),
                    )
                )
        except ServeError:
            for _, _, _, proc in procs:
                _terminate(proc)
            self.shards = []
            raise
        return self.urls_by_slot()

    def _spawn(self, rng: ShardRange) -> subprocess.Popen:
        cmd = [
            self.python,
            "-m",
            "repro.cli",
            "cluster",
            "shard",
            "--snapshot",
            str(self.snapshot),
            "--host",
            self.host,
            "--port",
            "0",
            "--gen",
            str(self.gen),
        ]
        if rng.addr_lo is not None:
            cmd += ["--lo", str(rng.addr_lo)]
        if rng.addr_hi is not None:
            cmd += ["--hi", str(rng.addr_hi)]
        if self.sidecar_dir is not None:
            cmd += ["--sidecar-dir", str(self.sidecar_dir)]
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_dir if not existing else f"{src_dir}{os.pathsep}{existing}"
        )
        return subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
        )

    def urls_by_slot(self) -> list[list[str]]:
        """Replica URLs grouped by range slot, replica order preserved."""
        grouped: list[list[str]] = [[] for _ in self.ranges]
        for shard in self.shards:
            grouped[shard.slot].append(shard.url)
        return grouped

    def kill(self, slot: int, replica: int, sig: int = signal.SIGKILL) -> int:
        """Send a signal to one replica; returns its pid.

        Raises:
            ServeError: when no such replica exists.
        """
        for shard in self.shards:
            if shard.slot == slot and shard.replica == replica:
                shard.proc.send_signal(sig)
                return shard.pid
        raise ServeError(f"no shard at slot={slot} replica={replica}")

    def stop_all(self) -> None:
        """Terminate every worker and reap it."""
        for shard in self.shards:
            _terminate(shard.proc)
        self.shards = []

    def __enter__(self) -> "ShardManager":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop_all()


def _read_banner(proc: subprocess.Popen, timeout_s: float) -> dict:
    """Read lines from a worker until its banner appears.

    Non-banner lines (warnings from imports, say) are skipped.  Raises
    :class:`ServeError` on timeout or if the worker exits first, with
    whatever output it produced in the message.
    """
    assert proc.stdout is not None
    deadline = time.monotonic() + timeout_s
    seen: list[str] = []
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            _terminate(proc)
            raise ServeError(
                "shard worker produced no banner within "
                f"{timeout_s:.0f}s; output so far: {seen[-5:]}"
            )
        ready, _, _ = select.select([proc.stdout], [], [], min(remaining, 0.5))
        if not ready:
            if proc.poll() is not None:
                raise ServeError(
                    f"shard worker exited with {proc.returncode} before "
                    f"its banner; output: {seen[-5:]}"
                )
            continue
        raw = proc.stdout.readline()
        if not raw:
            raise ServeError(
                f"shard worker closed stdout (exit {proc.poll()}); "
                f"output: {seen[-5:]}"
            )
        line = raw.decode("utf-8", errors="replace").strip()
        seen.append(line)
        match = BANNER_RE.search(line)
        if match:
            return match.groupdict()


def _terminate(proc: subprocess.Popen, grace_s: float = 3.0) -> None:
    if proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=grace_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=grace_s)
