"""The shard worker: a partition-serving :class:`SnapshotServer`.

A :class:`ShardServer` is an ordinary snapshot server whose index was
built with :meth:`SnapshotIndex.build_partition`, plus two extra
endpoint planes the coordinator uses:

- ``/internal/…`` — scatter-gather legs.  ``locate-lines`` answers a
  batch of addresses as newline-separated pre-encoded JSON records
  (``null`` for misses) so the coordinator can splice shard answers
  into client responses without re-encoding; ``pref-partial`` returns
  this shard's integer share of a region's distance-preference
  histograms.
- ``/admin/…`` — the hot-swap protocol.  ``stage`` builds a new
  partition index for a new snapshot (and possibly new bounds) under a
  *generation* number while the old one keeps serving; ``activate``
  flips the default generation; ``retire`` drops old generations.

Every query endpoint accepts ``?_gen=G``: the coordinator pins each
request to the generation its routing table was planned against, so a
swap mid-request can never mix answers from two snapshots.  The
generations map is replaced wholesale on every change (never mutated),
so readers take no lock.  A pinned generation this replica does not
hold (it was down through a reload) answers 503 — the coordinator
fails over to a replica that does.

Both planes are admission-exempt: staging a snapshot and health checks
must work exactly when query traffic is being shed.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.errors import OverloadError, ServeError
from repro.geo.regions import region_by_name
from repro.serve.batcher import MicroBatcher
from repro.serve.index import DEFAULT_CELL_ARCMIN, SnapshotIndex
from repro.serve.server import (
    SnapshotServer,
    encode_json,
    int_param,
    parse_address_list,
    parse_query,
)


class ShardServer(SnapshotServer):
    """One replica of one shard range, with internal and admin planes."""

    always_admit = SnapshotServer.always_admit + ("internal", "admin")

    def __init__(
        self,
        source: str | Path,
        addr_lo: int | None,
        addr_hi: int | None,
        *,
        gen: int = 1,
        cell_arcmin: float = DEFAULT_CELL_ARCMIN,
        max_batch: int = 512,
        batch_window_s: float = 0.002,
        max_pending: int = 4096,
        sidecar_dir: str | Path | None = None,
        **server_kw,
    ) -> None:
        self._cell_arcmin = cell_arcmin
        self._sidecar_dir = (
            Path(sidecar_dir) if sidecar_dir is not None else None
        )
        if self._sidecar_dir is not None:
            self._sidecar_dir.mkdir(parents=True, exist_ok=True)
        index = self._build_partition(source, addr_lo, addr_hi, gen)
        super().__init__(
            index,
            max_batch=max_batch,
            batch_window_s=batch_window_s,
            max_pending=max_pending,
            **server_kw,
        )
        self._batcher_conf = {
            "max_batch": max_batch,
            "max_wait_s": batch_window_s,
            "max_pending": max_pending,
        }
        self._gen_lock = threading.Lock()  # serialises writers only
        self._active_gen = gen
        self._generations: dict[int, tuple[SnapshotIndex, MicroBatcher]] = {
            gen: (index, self.batcher)
        }

    # -- partition building --------------------------------------------------

    def _sidecar_path(
        self, source: str | Path, lo: int | None, hi: int | None
    ) -> Path | None:
        if self._sidecar_dir is None:
            return None
        cell = f"{self._cell_arcmin:g}".replace(".", "p")
        name = (
            f"{Path(source).stem}"
            f"-{'any' if lo is None else lo}"
            f"-{'any' if hi is None else hi}"
            f"-{cell}.derived.npz"
        )
        return self._sidecar_dir / name

    def _build_partition(
        self, source: str | Path, lo: int | None, hi: int | None, gen: int
    ) -> SnapshotIndex:
        # The sidecar file is keyed by (source, range, cell); its
        # embedded snapshot hash is re-verified at load, so a stale file
        # for a rewritten snapshot just means a rebuild, never bad data.
        derived = self._sidecar_path(source, lo, hi)
        index = SnapshotIndex.build_partition(
            source, lo, hi, self._cell_arcmin, derived=derived
        )
        if derived is not None and not index.derived_loaded:
            index.save_derived(derived)
        index.gen = gen
        return index

    # -- generation resolution -----------------------------------------------

    def _resolve(self, params: dict[str, str]) -> tuple[SnapshotIndex, MicroBatcher]:
        if "_gen" not in params:
            return self.index, self.batcher
        gen = int_param(params["_gen"], "_gen")
        entry = self._generations.get(gen)
        if entry is None:
            # 503, not 400: the coordinator treats it as failover —
            # this replica missed a reload and a peer holds the data.
            raise OverloadError(
                f"generation {gen} is not staged on this shard"
            )
        return entry

    def _dispatch(self, endpoint: str, path: str, raw_query: str):
        params = parse_query(raw_query)
        if endpoint == "admin":
            return self._handle_admin(path, params)
        index, batcher = self._resolve(params)
        if endpoint == "internal":
            return self._handle_internal(path, params, index)
        return self._route(endpoint, path, params, index, batcher)

    # -- internal plane ------------------------------------------------------

    def _handle_internal(
        self, path: str, params: dict[str, str], index: SnapshotIndex
    ):
        _, _, verb = path.lstrip("/").partition("/")
        if verb == "locate-lines":
            addresses = parse_address_list(params.get("addresses", ""))
            records = index.locate_many(addresses)
            lines = [
                b"null" if record is None else encode_json(record)
                for record in records
            ]
            return 200, b"\n".join(lines)
        if verb == "pref-partial":
            name = params.get("region")
            if not name:
                raise ServeError("pref-partial requires ?region=")
            region = region_by_name(name)
            return 200, index.preference_partial(region)
        return 404, {"error": f"unknown internal endpoint {path!r}"}

    # -- admin plane (hot snapshot swap) -------------------------------------

    def _handle_admin(self, path: str, params: dict[str, str]):
        _, _, verb = path.lstrip("/").partition("/")
        if verb == "stage":
            return self._admin_stage(params)
        if verb == "activate":
            return self._admin_activate(params)
        if verb == "retire":
            return self._admin_retire(params)
        if verb == "status":
            return 200, self._admin_status()
        return 404, {"error": f"unknown admin endpoint {path!r}"}

    def _admin_stage(self, params: dict[str, str]):
        snapshot = params.get("snapshot")
        if not snapshot:
            raise ServeError("stage requires ?snapshot=PATH")
        gen = int_param(params.get("gen", ""), "gen")
        lo = int_param(params["lo"], "lo") if "lo" in params else None
        hi = int_param(params["hi"], "hi") if "hi" in params else None
        index = self._build_partition(snapshot, lo, hi, gen)
        batcher = MicroBatcher(index.locate_many, **self._batcher_conf)
        with self._gen_lock:
            generations = dict(self._generations)
            generations[gen] = (index, batcher)
            self._generations = generations
        return 200, {
            "gen": gen,
            "snapshot_hash": index.snapshot_hash,
            "n_owned": index.dataset.n_nodes,
            "addr_lo": lo,
            "addr_hi": hi,
        }

    def _admin_activate(self, params: dict[str, str]):
        gen = int_param(params.get("gen", ""), "gen")
        entry = self._generations.get(gen)
        if entry is None:
            raise ServeError(f"generation {gen} is not staged")
        with self._gen_lock:
            self._active_gen = gen
            # Plain attribute swap: in-flight requests captured the old
            # pair at dispatch and finish against it safely.
            self.index, self.batcher = entry
        return 200, {
            "active_gen": gen,
            "snapshot_hash": entry[0].snapshot_hash,
        }

    def _admin_retire(self, params: dict[str, str]):
        keep = int_param(params.get("keep", ""), "keep")
        if keep not in self._generations:
            raise ServeError(f"generation {keep} is not staged")
        with self._gen_lock:
            dropped = {
                g: entry
                for g, entry in self._generations.items()
                if g != keep
            }
            self._generations = {keep: self._generations[keep]}
        for _, batcher in dropped.values():
            batcher.close()
        return 200, {"kept": keep, "dropped": sorted(dropped)}

    def _admin_status(self) -> dict:
        generations = self._generations
        return {
            "active_gen": self._active_gen,
            "staged_gens": sorted(generations),
            "generations": {
                str(g): {
                    "snapshot_hash": index.snapshot_hash,
                    "n_owned": index.dataset.n_nodes,
                    "built_unix": round(index.built_unix, 3),
                }
                for g, (index, _) in generations.items()
            },
        }

    # -- bookkeeping ---------------------------------------------------------

    def stats(self) -> dict:
        facts = super().stats()
        facts["shard"] = self._admin_status()
        return facts

    def stop(self) -> None:
        super().stop()
        for _, batcher in self._generations.values():
            batcher.close()
