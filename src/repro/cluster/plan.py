"""Address-space partition planning for the shard fleet.

The interface-address axis is the one the snapshot's ``/locate``
lookups are sorted on, so the cluster shards it into contiguous
half-open ranges: shard ``i`` owns ``[cut_i, cut_{i+1})`` with the
first and last ranges unbounded below/above.  Cuts land on observed
address quantiles, so ranges hold roughly equal node counts regardless
of how the address space is populated.

:func:`partition_bounds` always returns exactly ``n_ranges`` ranges —
a degenerate snapshot (fewer distinct addresses than ranges) yields
empty ranges rather than fewer, because each range maps to a fixed
replica set of shard processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError


@dataclass(frozen=True)
class ShardRange:
    """One contiguous half-open slice ``[addr_lo, addr_hi)`` of addresses.

    ``None`` leaves a side unbounded; the planner's first range is
    always unbounded below and the last unbounded above, so every
    address — including ones absent from the snapshot — routes to
    exactly one range.
    """

    addr_lo: int | None
    addr_hi: int | None

    def contains(self, address: int) -> bool:
        """Whether an address routes to this range."""
        if self.addr_lo is not None and address < self.addr_lo:
            return False
        if self.addr_hi is not None and address >= self.addr_hi:
            return False
        return True

    def label(self) -> str:
        """Compact ``[lo,hi)`` display form (``*`` for unbounded)."""
        lo = "*" if self.addr_lo is None else str(self.addr_lo)
        hi = "*" if self.addr_hi is None else str(self.addr_hi)
        return f"[{lo},{hi})"


def partition_bounds(addresses: np.ndarray, n_ranges: int) -> list[ShardRange]:
    """Plan ``n_ranges`` contiguous address ranges of balanced node count.

    Cuts are quantiles of the distinct sorted addresses.  Duplicate
    cuts (tiny snapshots) are kept monotone by clamping, which yields
    empty ranges ``[c, c)`` — harmless: the shard simply owns nothing.

    Raises:
        ServeError: when ``n_ranges`` is not positive.
    """
    if n_ranges < 1:
        raise ServeError(f"n_ranges must be >= 1, got {n_ranges}")
    distinct = np.unique(np.asarray(addresses, dtype=np.int64))
    cuts: list[int] = []
    previous: int | None = None
    for i in range(1, n_ranges):
        if distinct.size:
            cut = int(distinct[(i * distinct.size) // n_ranges])
        else:
            cut = 0
        if previous is not None and cut < previous:
            cut = previous
        cuts.append(cut)
        previous = cut
    bounds: list[int | None] = [None, *cuts, None]
    return [
        ShardRange(addr_lo=bounds[i], addr_hi=bounds[i + 1])
        for i in range(n_ranges)
    ]


def range_indices(
    ranges: list[ShardRange], addresses: np.ndarray
) -> np.ndarray:
    """Vectorised range lookup: the owning range index per address."""
    inner = np.array(
        [r.addr_lo for r in ranges[1:]], dtype=np.int64
    ).reshape(-1)
    return np.searchsorted(
        inner, np.asarray(addresses, dtype=np.int64), side="right"
    )
