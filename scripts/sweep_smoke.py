"""End-to-end smoke test of the sweep engine (CI gate).

Drives the 20-trial demo campaign (``examples/sweep_demo.json`` — one
injected worker crash, one injected flaky trial) through real
subprocesses, exactly as a user would:

1. ``repro sweep run`` starts the campaign on two workers; this script
   polls the result store from *outside* the engine process (the
   concurrent-reader contract of the WAL store) and sends SIGINT once
   a few trials have completed;
2. the interrupted process must exit nonzero and leave the campaign
   resumable;
3. ``repro sweep resume`` completes the grid, skipping finished work;
4. the store must hold every trial exactly once, all ``done``, with the
   crash-injected trial showing a second attempt;
5. ``repro sweep report`` must emit bootstrap confidence intervals for
   the paper's headline statistics (alpha exponent, Waxman decay scale,
   intradomain share), and ``repro report diff`` of the report against
   itself must be clean.

Run from the repo root with ``PYTHONPATH=src python scripts/sweep_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sweep import ResultStore, load_spec  # noqa: E402

SPEC_PATH = REPO_ROOT / "examples" / "sweep_demo.json"


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return env


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_cli_env(),
        capture_output=True,
        text=True,
    )


def main() -> int:
    spec = load_spec(SPEC_PATH)
    expected = len(spec.expand())
    tmp = Path(tempfile.mkdtemp(prefix="sweep_smoke_"))
    db = tmp / "sweep.db"

    # 1. start the campaign and interrupt it mid-flight.
    print(f"starting campaign ({expected} trials, 2 workers)...")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "sweep", "run",
            str(SPEC_PATH), "--db", str(db), "--workers", "2",
            "--start-method", "fork",
        ],
        env=_cli_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    store = ResultStore(db)
    interrupted = False
    deadline = time.time() + 120
    while time.time() < deadline and proc.poll() is None:
        try:
            done = store.counts(store.campaign_id(spec.name)).get("done", 0)
        except Exception:
            done = 0  # campaign row not created yet
        if done >= 3:
            print(f"  {done} trials done; sending SIGINT")
            proc.send_signal(signal.SIGINT)
            interrupted = True
            break
        time.sleep(0.05)
    out, err = proc.communicate(timeout=120)
    if interrupted:
        assert proc.returncode != 0, (
            f"interrupted run should exit nonzero, got {proc.returncode}\n{err}"
        )
        print("  interrupted run exited nonzero, as required")
    else:
        # The campaign can finish before three trials are visible on a
        # fast machine; the resume step below then just verifies skips.
        assert proc.returncode == 0, f"campaign failed:\n{err}"
        print("  campaign finished before the interrupt window")

    # 2. resume to completion.
    result = _cli(
        "sweep", "resume", spec.name, "--db", str(db),
        "--workers", "2", "--start-method", "fork",
    )
    assert result.returncode == 0, f"resume failed:\n{result.stderr}"
    print("resume completed the grid")

    # 3. exactly-once trial rows; the crash-injected trial retried.
    campaign_id = store.campaign_id(spec.name)
    rows = list(store.trial_rows(campaign_id))
    assert len(rows) == expected, f"expected {expected} rows, got {len(rows)}"
    not_done = [r.key for r in rows if r.status != "done"]
    assert not not_done, f"trials not done: {not_done}"
    crash_key = spec.expand()[3].key
    (crash_row,) = [r for r in rows if r.key == crash_key]
    assert crash_row.attempts >= 2, (
        f"crash-injected trial {crash_key} shows no retry "
        f"(attempts={crash_row.attempts})"
    )
    print(
        f"all {expected} trials done exactly once; crash trial took "
        f"{crash_row.attempts} attempts"
    )

    # 4. the aggregate report carries the paper's headline CIs.
    report_path = tmp / "report.json"
    result = _cli(
        "sweep", "report", spec.name, "--db", str(db),
        "--out", str(report_path),
    )
    assert result.returncode == 0, f"sweep report failed:\n{result.stderr}"
    payload = json.loads(report_path.read_text())
    pipeline_cells = [
        c for c in payload["cells"] if c["kind"] == "pipeline"
    ]
    assert pipeline_cells, "no pipeline cells in the report"
    for cell in pipeline_cells:
        for metric in ("alpha_exponent", "waxman_l_miles", "intradomain_share"):
            summary = cell["metrics"].get(metric)
            assert summary is not None, (
                f"cell {cell['label']} is missing {metric}"
            )
            assert summary["lo"] <= summary["mean"] <= summary["hi"], (
                f"{metric} interval does not bracket its mean: {summary}"
            )
    assert payload["generator_scores"], "generator ranking is empty"
    print("report emits bootstrap CIs for the headline statistics")

    # 5. the report diffs cleanly against itself.
    result = _cli("report", "diff", str(report_path), str(report_path))
    assert result.returncode == 0, f"self-diff not clean:\n{result.stdout}"
    print("sweep smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
