"""Telemetry-overhead gate: live instrumentation must stay near-free (CI).

Drives the same ``/locate`` load twice against an in-process snapshot
server over the small snapshot:

- **baseline** — exporter off: no scraper, no profiler;
- **instrumented** — a scraper thread polling ``/metrics`` throughout
  and the sampling profiler running at its default 97 Hz.

Single p99 samples on shared runners swing tens of percent, so the
gate is statistical: each round runs baseline and instrumented
back-to-back (pairing cancels slow machine drift) and the gate checks
the **median** of the per-round p99 ratios (the median discards
rounds disturbed by noisy neighbours) against
``TELEMETRY_OVERHEAD_MAX_RATIO`` (default 1.05, i.e. < 5% regression).

Artifacts written at the repo root for CI upload:

- ``telemetry-profile.collapsed`` — the flamegraph input sampled from
  the instrumented run;
- ``BENCH_telemetry_overhead.json`` / ``BENCH_history.jsonl`` — the
  common bench envelope, so ``repro bench history`` trends the
  overhead ratio across revisions.

Run from the repo root:
``PYTHONPATH=src python scripts/telemetry_overhead.py``.
"""

from __future__ import annotations

import http.client
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from record import record_bench  # noqa: E402

from repro.config import small_scenario  # noqa: E402
from repro.datasets.pipeline import run_pipeline  # noqa: E402
from repro.obs import SamplingProfiler  # noqa: E402
from repro.serve import SnapshotIndex, SnapshotServer  # noqa: E402

MAX_RATIO = float(os.environ.get("TELEMETRY_OVERHEAD_MAX_RATIO", "1.05"))
ROUNDS = int(os.environ.get("TELEMETRY_OVERHEAD_ROUNDS", "5"))
N_THREADS = 4
REQUESTS_PER_THREAD = 1_500
SCRAPE_INTERVAL_S = 0.05

PROFILE_PATH = REPO_ROOT / "profiles" / "telemetry-profile.collapsed"


def _drive(server: SnapshotServer, paths: list[str]) -> np.ndarray:
    """Hammer the server over keep-alive connections; returns ms latencies."""
    latencies: list[list[float]] = [[] for _ in range(N_THREADS)]
    barrier = threading.Barrier(N_THREADS + 1)

    def worker(tid: int) -> None:
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        mine = latencies[tid]
        barrier.wait()
        for i in range(REQUESTS_PER_THREAD):
            path = paths[(tid * REQUESTS_PER_THREAD + i) % len(paths)]
            start = time.perf_counter()
            conn.request("GET", path)
            conn.getresponse().read()
            mine.append((time.perf_counter() - start) * 1e3)
        conn.close()

    threads = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads:
        thread.join()
    return np.asarray([ms for per in latencies for ms in per])


def _scraper(server: SnapshotServer, stop: threading.Event) -> int:
    """Poll /metrics until stopped; returns the number of scrapes."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    scrapes = 0
    while not stop.wait(SCRAPE_INTERVAL_S):
        conn.request("GET", "/metrics")
        body = conn.getresponse().read()
        assert body, "empty /metrics body"
        scrapes += 1
    conn.close()
    return scrapes


def run_mode(index: SnapshotIndex, paths: list[str], instrumented: bool) -> dict:
    """One measured round of the given mode; returns latency quantiles."""
    profiler = SamplingProfiler() if instrumented else None
    stop = threading.Event()
    scrapes = [0]
    with SnapshotServer(index, port=0, max_inflight=256) as server:
        # Warm-up primes the cache so the timed pass is steady state.
        _drive(server, paths)
        scraper = None
        if instrumented:
            profiler.start()

            def scrape() -> None:
                scrapes[0] = _scraper(server, stop)

            scraper = threading.Thread(target=scrape, daemon=True)
            scraper.start()
        start = time.perf_counter()
        latencies = _drive(server, paths)
        wall_s = time.perf_counter() - start
        if instrumented:
            stop.set()
            scraper.join()
            profiler.stop()
            profiler.write(PROFILE_PATH)
    p50, p95, p99 = (float(np.percentile(latencies, q)) for q in (50, 95, 99))
    return {
        "p50_ms": round(p50, 4),
        "p95_ms": round(p95, 4),
        "p99_ms": round(p99, 4),
        "rps": round(len(latencies) / wall_s, 1),
        "scrapes": scrapes[0],
    }


def main() -> int:
    dataset = run_pipeline(small_scenario()).dataset("IxMapper", "Skitter")
    index = SnapshotIndex(dataset)
    rng = np.random.default_rng(42)
    pool = rng.choice(dataset.addresses, size=256, replace=False)
    paths = [f"/locate?address={int(a)}" for a in pool]

    baseline_rounds, instrumented_rounds, ratios = [], [], []
    for round_index in range(ROUNDS):
        baseline_rounds.append(run_mode(index, paths, instrumented=False))
        instrumented_rounds.append(run_mode(index, paths, instrumented=True))
        ratios.append(
            instrumented_rounds[-1]["p99_ms"] / baseline_rounds[-1]["p99_ms"]
        )
        print(
            f"round {round_index + 1}/{ROUNDS}: "
            f"baseline p99={baseline_rounds[-1]['p99_ms']}ms "
            f"instrumented p99={instrumented_rounds[-1]['p99_ms']}ms "
            f"ratio={ratios[-1]:.3f}",
            flush=True,
        )

    baseline = min(baseline_rounds, key=lambda r: r["p99_ms"])
    instrumented = min(instrumented_rounds, key=lambda r: r["p99_ms"])
    median_ratio = float(np.median(ratios))
    total_scrapes = sum(r["scrapes"] for r in instrumented_rounds)

    record_bench(
        "telemetry_overhead",
        {
            "rounds": ROUNDS,
            "requests_per_round": N_THREADS * REQUESTS_PER_THREAD,
            "baseline_best": baseline,
            "instrumented_best": instrumented,
            "p99_ratios": [round(r, 4) for r in ratios],
            "p99_ratio_median": round(median_ratio, 4),
            "max_ratio": MAX_RATIO,
            "metrics_scrapes": total_scrapes,
        },
        headline={
            "p99_ratio_median": (median_ratio, "lower"),
            "instrumented_p99_ms": (instrumented["p99_ms"], "lower"),
        },
    )
    print(
        f"baseline best p99 {baseline['p99_ms']}ms at {baseline['rps']} rps; "
        f"instrumented best p99 {instrumented['p99_ms']}ms at "
        f"{instrumented['rps']} rps ({total_scrapes} metrics scrapes); "
        f"median ratio {median_ratio:.3f} (gate {MAX_RATIO})"
    )
    assert PROFILE_PATH.exists() and PROFILE_PATH.stat().st_size > 0
    print(f"flamegraph input at {PROFILE_PATH}")
    if median_ratio > MAX_RATIO:
        print(
            f"FAIL: instrumented p99 is {median_ratio:.3f}x baseline "
            f"(median of {ROUNDS} paired rounds), gate is {MAX_RATIO}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
