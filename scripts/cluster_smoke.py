"""End-to-end smoke test of the sharded serving cluster (CI gate).

Exercises the whole cluster story through real OS processes, exactly
as an operator would:

1. ``repro snapshot`` builds the small snapshot; a second snapshot
   with visibly shifted coordinates is derived from it;
2. ``repro cluster serve`` spawns 2 ranges x 2 replicas behind a
   coordinator (shard pids and the coordinator URL parsed from the
   printed banners);
3. mixed queries (point locate, batched locate, near, AS summary,
   distance preference) run under sustained multi-threaded load;
4. one shard replica is SIGKILLed mid-load — the coordinator must fail
   over with **zero** failed client requests, then eject the replica;
5. ``repro cluster status`` renders the degraded fleet;
6. ``repro cluster reload`` hot-swaps the fleet onto the second
   snapshot while the load keeps running — still zero failures, and
   answers flip to the new snapshot's coordinates;
7. SIGINT stops the coordinator, which must exit 0.

Run from the repo root with
``PYTHONPATH=src python scripts/cluster_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.mapped import MappedDataset  # noqa: E402
from repro.datasets.serialize import load_dataset, save_dataset  # noqa: E402
from repro.serve import SnapshotClient  # noqa: E402

SHARD_RE = re.compile(
    r"shard slot=(?P<slot>\d+) replica=(?P<replica>\d+) "
    r"pid=(?P<pid>\d+) range=(?P<range>\S+) on (?P<url>http://\S+)"
)
COORD_RE = re.compile(r"cluster coordinator on (?P<url>http://\S+)")


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return env


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        check=True,
        env=_cli_env(),
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def _shifted_snapshot(source: Path, out: Path) -> None:
    dataset = load_dataset(source)
    save_dataset(
        MappedDataset(
            label="shifted",
            kind=dataset.kind,
            addresses=dataset.addresses,
            lats=np.clip(dataset.lats + 1.0, -90.0, 90.0),
            lons=dataset.lons,
            asns=dataset.asns,
            links=dataset.links,
        ),
        out,
    )


class LoadGenerator:
    """Mixed-query hammer; any client-visible failure is recorded."""

    def __init__(self, url: str, addresses: list[int], asn: int) -> None:
        self.failures: list[str] = []
        self._stop = threading.Event()
        self._url = url
        self._addresses = addresses
        self._asn = asn
        self._threads = [
            threading.Thread(target=self._worker, args=(tid,), daemon=True)
            for tid in range(4)
        ]
        self.requests = 0
        self._lock = threading.Lock()

    def _worker(self, tid: int) -> None:
        client = SnapshotClient(self._url, timeout_s=30.0)
        addresses = self._addresses
        step = 0
        while not self._stop.is_set():
            step += 1
            try:
                kind = (tid + step) % 5
                if kind == 0:
                    client.locate(addresses[step % len(addresses)])
                elif kind == 1:
                    batch = [
                        addresses[(step + i) % len(addresses)]
                        for i in range(16)
                    ]
                    client.locate_many(batch)
                elif kind == 2:
                    client.near(40.0, -95.0 + (step % 7), k=5)
                elif kind == 3:
                    client.as_info(self._asn)
                else:
                    client.distance_preference("US")
            except Exception as exc:  # noqa: BLE001 - recording all
                self.failures.append(f"{type(exc).__name__}: {exc}")
            with self._lock:
                self.requests += 1

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp:
        snap_a = Path(tmp) / "snapshot_a.npz"
        snap_b = Path(tmp) / "snapshot_b.npz"

        print("== building snapshots ==", flush=True)
        _run_cli("snapshot", "--scale", "small", "--out", str(snap_a))
        _shifted_snapshot(snap_a, snap_b)
        with np.load(snap_a) as payload:
            addresses = [int(a) for a in payload["addresses"][:64]]
            asns = payload["asns"]
            asn = int(asns[asns >= 0][0])

        print("== starting cluster (2 ranges x 2 replicas) ==", flush=True)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "cluster",
                "serve",
                "--snapshot",
                str(snap_a),
                "--ranges",
                "2",
                "--replicas",
                "2",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_cli_env(),
            cwd=REPO_ROOT,
        )
        load = None
        try:
            shards = []
            url = None
            deadline = time.monotonic() + 300
            while url is None:
                assert time.monotonic() < deadline, "no coordinator banner"
                line = proc.stdout.readline()
                assert line, f"cluster serve exited: {proc.poll()}"
                shard = SHARD_RE.search(line)
                if shard:
                    shards.append(shard.groupdict())
                    continue
                coord = COORD_RE.search(line)
                if coord:
                    url = coord.group("url")
            assert len(shards) == 4, shards
            print(f"coordinator {url}, {len(shards)} shards", flush=True)

            client = SnapshotClient(url, timeout_s=30.0)
            before = client.locate(addresses[0])
            batch = client.locate_many(addresses[:16])
            assert [r["address"] for r in batch] == addresses[:16]
            assert client.near(40.0, -95.0, k=3)["results"]
            assert client.as_info(asn)["asn"] == asn
            assert client.distance_preference("US")["region"] == "US"
            print("mixed queries ok", flush=True)

            load = LoadGenerator(url, addresses, asn)
            load.start()
            time.sleep(2.0)

            victim = shards[0]
            print(
                f"== SIGKILL shard slot={victim['slot']} "
                f"replica={victim['replica']} pid={victim['pid']} ==",
                flush=True,
            )
            os.kill(int(victim["pid"]), signal.SIGKILL)

            # The fleet keeps answering; the dead replica gets ejected.
            deadline = time.monotonic() + 60
            while True:
                stats = client.stats()
                slot = stats["cluster"]["ranges"][int(victim["slot"])]
                if slot["n_healthy"] == 1:
                    break
                assert time.monotonic() < deadline, "replica not ejected"
                time.sleep(0.25)
            print(
                f"replica ejected, {load.requests} requests so far, "
                f"{len(load.failures)} failures",
                flush=True,
            )
            assert not load.failures, load.failures[:5]

            status = _run_cli("cluster", "status", url)
            assert "DOWN" in status.stdout, status.stdout
            print("cluster status shows the dead replica", flush=True)

            print("== hot reload under load ==", flush=True)
            reload_out = _run_cli("cluster", "reload", url, str(snap_b))
            reloaded = json.loads(reload_out.stdout)
            assert reloaded["gen"] == 2, reloaded
            assert reloaded["staged_replicas"] == 3, reloaded

            time.sleep(1.0)
            load.stop()
            assert not load.failures, load.failures[:5]

            after = client.locate(addresses[0])
            assert abs(after["lat"] - (before["lat"] + 1.0)) < 1e-9, (
                before,
                after,
            )
            stats = client.stats()
            assert stats["cluster"]["gen"] == 2
            print(
                f"reload flipped answers (lat {before['lat']} -> "
                f"{after['lat']}), {load.requests} requests, 0 failures",
                flush=True,
            )
        finally:
            if load is not None:
                load.stop()
            proc.send_signal(signal.SIGINT)
            try:
                out, _ = proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, _ = proc.communicate()
        assert proc.returncode == 0, (
            f"cluster serve exited {proc.returncode}: {out[-2000:]}"
        )

    print("cluster smoke: ALL OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    sys.exit(code)
