"""End-to-end smoke test of the snapshot query service (CI gate).

Exercises the full serving path through real subprocesses, exactly as a
user would:

1. ``repro snapshot`` builds the small snapshot and exports it as npz;
2. ``repro serve`` loads it and binds an ephemeral port (parsed from
   the printed banner);
3. a client hits ``/healthz``, ``/locate`` twice (asserting identical
   answers and a cache hit in ``/stats``);
4. SIGINT stops the server, which must exit 0 and write a schema-valid
   stats report.

Run from the repo root with ``PYTHONPATH=src python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.report import validate_report  # noqa: E402
from repro.serve import SnapshotClient  # noqa: E402


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return env


def _run_cli(*args: str) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        check=True,
        env=_cli_env(),
        cwd=REPO_ROOT,
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        snapshot = Path(tmp) / "snapshot.npz"
        report_path = Path(tmp) / "serve-stats.json"

        print("== building snapshot ==", flush=True)
        _run_cli("snapshot", "--scale", "small", "--out", str(snapshot))
        address = int(np.load(snapshot)["addresses"][0])

        print("== starting server ==", flush=True)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--snapshot",
                str(snapshot),
                "--port",
                "0",
                "--stats-report",
                str(report_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_cli_env(),
            cwd=REPO_ROOT,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"on (http://\S+)", banner)
            assert match, f"no server URL in banner: {banner!r}"
            client = SnapshotClient(match.group(1))

            health = client.healthz()
            assert health["status"] == "ok", health
            print("healthz ok,", "snapshot", health["snapshot_hash"][:12])

            first = client.locate(address)
            second = client.locate(address)
            assert first == second, (first, second)
            stats = client.stats()
            assert stats["cache"]["hits"] >= 1, stats["cache"]
            print(
                f"locate({address}) -> ({first['lat']}, {first['lon']}), "
                f"cache hits {stats['cache']['hits']}"
            )
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                _, err = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                _, err = proc.communicate()
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"

        payload = json.loads(report_path.read_text(encoding="utf-8"))
        errors = validate_report(payload)
        assert not errors, "invalid stats report: " + "; ".join(errors)
        counters = payload["metrics"]["counters"]
        assert counters.get("serve.requests.locate", 0) >= 2, counters
        print("stats report valid,", len(counters), "counters")

    print("serve smoke: ALL OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    sys.exit(code)
