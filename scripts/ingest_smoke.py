"""End-to-end smoke test of streaming ingestion (CI gate).

Exercises the delta → WAL → incremental snapshot → cluster generation
pipeline through real OS processes, exactly as an operator would:

1. ``repro snapshot`` builds the small base snapshot; five chained
   delta batches are synthesized from it and saved as spool files;
2. ``repro cluster serve`` spawns 2 ranges x 2 replicas behind a
   coordinator, and mixed queries run under sustained multi-threaded
   load for the rest of the test;
3. ``repro ingest run`` consumes the first three spool deltas,
   journals them to the WAL, patches its index incrementally, and
   auto-publishes a generation that hot-reloads the cluster — the
   coordinator's generation flips and a delta-added address becomes
   servable, with **zero** failed client requests;
4. two more deltas are journaled but *not* published, then the
   ingester is SIGKILLed mid-stream;
5. a restarted ingester resumes from the WAL (checkpoint + suffix
   replay), force-publishes the recovered state, and the cluster flips
   again — still zero failures, and ``repro ingest replay`` confirms
   the WAL reproduces the exact published content hash;
6. ``repro ingest status`` renders the checkpoint; the ingester's
   ``/metrics`` endpoint exports the freshness histogram.

Run from the repo root with
``PYTHONPATH=src python scripts/ingest_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.serialize import load_dataset  # noqa: E402
from repro.ingest import load_delta, save_delta  # noqa: E402
from repro.measure.stream import DeltaStream  # noqa: E402
from repro.serve import QueryError, SnapshotClient  # noqa: E402

COORD_RE = re.compile(r"cluster coordinator on (?P<url>http://\S+)")
INGEST_RE = re.compile(
    r"ingest pid=(?P<pid>\d+) wal_seq=(?P<seq>\d+) gen=(?P<gen>\d+) "
    r"hash=(?P<hash>[0-9a-f]+) out=(?P<out>\S+)"
)
METRICS_RE = re.compile(r"ingest metrics on (?P<url>http://\S+)")


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return env


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        check=True,
        env=_cli_env(),
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def _popen_cli(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_cli_env(),
        cwd=REPO_ROOT,
    )


def _read_until(proc: subprocess.Popen, pattern: re.Pattern,
                timeout_s: float = 300.0) -> re.Match:
    deadline = time.monotonic() + timeout_s
    seen: list[str] = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        assert line, (
            f"process exited ({proc.poll()}) before {pattern.pattern!r}; "
            f"output: {seen[-5:]}"
        )
        seen.append(line.strip())
        match = pattern.search(line)
        if match:
            return match
    raise AssertionError(
        f"no match for {pattern.pattern!r} in {timeout_s}s: {seen[-5:]}"
    )


def _wait_for_gen(client: SnapshotClient, gen: int,
                  timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while True:
        stats = client.stats()
        if stats["cluster"]["gen"] >= gen:
            return stats
        assert time.monotonic() < deadline, (
            f"cluster never reached gen {gen}: {stats['cluster']['gen']}"
        )
        time.sleep(0.25)


def _wait_spool_empty(spool: Path, timeout_s: float = 120.0) -> None:
    deadline = time.monotonic() + timeout_s
    while list(spool.glob("*.npz")):
        assert time.monotonic() < deadline, "spool never drained"
        time.sleep(0.1)


class LoadGenerator:
    """Mixed-query hammer; any client-visible failure is recorded."""

    def __init__(self, url: str, addresses: list[int], asn: int) -> None:
        self.failures: list[str] = []
        self._stop = threading.Event()
        self._url = url
        self._addresses = addresses
        self._asn = asn
        self._threads = [
            threading.Thread(target=self._worker, args=(tid,), daemon=True)
            for tid in range(4)
        ]
        self.requests = 0
        self._lock = threading.Lock()

    def _worker(self, tid: int) -> None:
        client = SnapshotClient(self._url, timeout_s=30.0)
        addresses = self._addresses
        step = 0
        while not self._stop.is_set():
            step += 1
            try:
                kind = (tid + step) % 5
                if kind == 0:
                    client.locate(addresses[step % len(addresses)])
                elif kind == 1:
                    batch = [
                        addresses[(step + i) % len(addresses)]
                        for i in range(16)
                    ]
                    client.locate_many(batch)
                elif kind == 2:
                    client.near(40.0, -95.0 + (step % 7), k=5)
                elif kind == 3:
                    client.as_info(self._asn)
                else:
                    client.distance_preference("US")
            except Exception as exc:  # noqa: BLE001 - recording all
                self.failures.append(f"{type(exc).__name__}: {exc}")
            with self._lock:
                self.requests += 1

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="ingest-smoke-") as tmp:
        tmp_path = Path(tmp)
        snap = tmp_path / "base.npz"
        spool = tmp_path / "spool"
        ing_dir = tmp_path / "ingest"
        spool.mkdir()

        print("== building base snapshot and delta spool ==", flush=True)
        _run_cli("snapshot", "--scale", "small", "--out", str(snap))
        base = load_dataset(snap)
        stream = DeltaStream(base, np.random.default_rng(2026))
        deltas = [stream.next_batch() for _ in range(5)]
        staged = [
            tmp_path / f"delta-{i:03d}.npz" for i in range(len(deltas))
        ]
        for path, delta in zip(staged, deltas):
            save_delta(delta, path)
        added_address = int(deltas[0].add_addresses[0])
        addresses = [int(a) for a in base.addresses[:64]]
        asns = base.asns
        asn = int(asns[asns >= 0][0])

        print("== starting cluster (2 ranges x 2 replicas) ==", flush=True)
        cluster = _popen_cli(
            "cluster", "serve", "--snapshot", str(snap),
            "--ranges", "2", "--replicas", "2", "--port", "0",
        )
        load = None
        ingest = None
        try:
            url = _read_until(cluster, COORD_RE).group("url")
            client = SnapshotClient(url, timeout_s=30.0)
            assert client.locate(addresses[0])
            try:
                client.locate(added_address)
                raise AssertionError("delta address servable before ingest")
            except QueryError as exc:
                assert exc.status == 404, exc
            print(f"coordinator {url}", flush=True)

            load = LoadGenerator(url, addresses, asn)
            load.start()
            time.sleep(1.0)

            print("== ingesting 3 deltas under load ==", flush=True)
            for src, delta in zip(staged[:3], deltas[:3]):
                (spool / src.name).write_bytes(src.read_bytes())
            ingest = _popen_cli(
                "ingest", "run", "--base", str(snap), "--out", str(ing_dir),
                "--spool", str(spool), "--coordinator", url,
                "--publish-batches", "3", "--publish-age-s", "3600",
                "--metrics-port", "0",
            )
            banner = _read_until(ingest, INGEST_RE)
            assert banner.group("seq") == "0", banner.group(0)
            metrics_url = _read_until(ingest, METRICS_RE).group("url")

            stats = _wait_for_gen(client, 2)
            assert stats["cluster"]["built_unix"] > 0
            _wait_spool_empty(spool)
            record = client.locate(added_address)
            assert record is not None, "delta-added address not servable"
            print(
                f"gen {stats['cluster']['gen']} live, address "
                f"{added_address} now answers, {load.requests} requests, "
                f"{len(load.failures)} failures",
                flush=True,
            )
            assert not load.failures, load.failures[:5]

            body = urllib.request.urlopen(f"{metrics_url}/metrics").read()
            exposition = body.decode()
            assert "repro_ingest_freshness_s_count" in exposition
            assert "repro_ingest_generations_published_total" in exposition
            health = json.loads(
                urllib.request.urlopen(f"{metrics_url}/healthz").read()
            )
            assert health["gen"] >= 4, health  # base + three deltas
            print("ingest /metrics exports freshness histogram", flush=True)

            print("== journal 2 more deltas, SIGKILL the ingester ==",
                  flush=True)
            for src in staged[3:]:
                (spool / src.name).write_bytes(src.read_bytes())
            _wait_spool_empty(spool)
            time.sleep(0.5)  # journaled (unlink follows the WAL append)
            os.kill(ingest.pid, signal.SIGKILL)
            ingest.wait(timeout=60)
            status = _run_cli("ingest", "status", "--out", str(ing_dir))
            facts = json.loads(status.stdout)
            assert facts["wal"]["last_seq"] == 5, facts["wal"]
            assert facts["checkpoint"]["seq"] == 3, facts["checkpoint"]
            print("WAL holds 5 deltas, checkpoint at 3", flush=True)

            print("== restart: resume from WAL, republish ==", flush=True)
            ingest = _popen_cli(
                "ingest", "run", "--base", str(snap), "--out", str(ing_dir),
                "--spool", str(spool), "--coordinator", url,
                "--publish-batches", "3", "--publish-age-s", "3600",
            )
            banner = _read_until(ingest, INGEST_RE)
            assert banner.group("seq") == "5", banner.group(0)

            stats = _wait_for_gen(client, 3)
            published_hash = None
            deadline = time.monotonic() + 60
            while published_hash is None:
                assert time.monotonic() < deadline, "no recovery checkpoint"
                checkpoint = json.loads(
                    (ing_dir / "checkpoint.json").read_text()
                )
                if checkpoint["seq"] == 5:
                    published_hash = checkpoint["snapshot_hash"]
                else:
                    time.sleep(0.25)
            assert stats["cluster"]["snapshot_hash"] == published_hash
            print(
                f"recovered generation live (gen {stats['cluster']['gen']}, "
                f"hash {published_hash[:12]})",
                flush=True,
            )

            time.sleep(1.0)
            load.stop()
            assert not load.failures, load.failures[:5]
            print(
                f"{load.requests} requests across both reloads, 0 failures",
                flush=True,
            )

            print("== offline WAL replay audit ==", flush=True)
            replay = _run_cli(
                "ingest", "replay", "--base", str(snap),
                "--wal", str(ing_dir / "ingest.wal"),
            )
            assert published_hash in replay.stdout, replay.stdout
            print("replay reproduces the published hash", flush=True)

            ingest.send_signal(signal.SIGINT)
            assert ingest.wait(timeout=60) == 0
            ingest = None
        finally:
            if load is not None:
                load.stop()
            if ingest is not None and ingest.poll() is None:
                ingest.kill()
                ingest.wait(timeout=30)
            cluster.send_signal(signal.SIGINT)
            try:
                out, _ = cluster.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                cluster.kill()
                out, _ = cluster.communicate()
        assert cluster.returncode == 0, (
            f"cluster serve exited {cluster.returncode}: {out[-2000:]}"
        )

    print("ingest smoke: ALL OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    sys.exit(code)
