"""End-to-end smoke test of continuous analytics (CI gate).

Exercises the ingest → analytics → drift pipeline through real OS
processes, exactly as an operator would:

1. ``repro snapshot`` builds the small base snapshot; six chained
   delta batches are synthesized from it — five benign arrival batches
   followed by one remap-heavy batch that reassigns 400 interfaces to
   new ASes, collapsing the intradomain link share;
2. ``repro ingest run --analytics`` consumes the spool at
   publish-every-batch cadence, maintaining per-generation paper
   metrics incrementally and scoring ``intradomain_share`` for drift:
   the five benign generations stay quiet, the remap batch raises
   **exactly one** trigger alert, visible on the ingester's
   ``/metrics`` endpoint (``repro_analytics_*`` gauges) and in
   ``repro ingest status`` (analytics lag 0);
3. after a clean shutdown, ``repro analytics status`` shows every
   published generation stored with the single trigger recorded;
   ``history`` renders the per-generation series and ``diff`` flags
   the drifted metrics between the last two generations;
4. an offline ``repro analytics run`` over the same WAL and store
   is idempotent — it re-analyzes every generation onto the same keys
   and raises zero new alerts.

Run from the repo root with
``PYTHONPATH=src python scripts/analytics_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.serialize import load_dataset  # noqa: E402
from repro.ingest import save_delta  # noqa: E402
from repro.measure.stream import DeltaStream  # noqa: E402

INGEST_RE = re.compile(
    r"ingest pid=(?P<pid>\d+) wal_seq=(?P<seq>\d+) gen=(?P<gen>\d+) "
    r"hash=(?P<hash>[0-9a-f]+) out=(?P<out>\S+)"
)
METRICS_RE = re.compile(r"ingest metrics on (?P<url>http://\S+)")
ANALYTICS_RE = re.compile(r"ingest analytics db=(?P<db>\S+)")

#: Five benign arrival batches, then one remap-heavy drift batch.
BENIGN = dict(n_adds=6, n_links=8, n_moves=3, n_remaps=0)
DRIFT = dict(n_adds=6, n_links=8, n_moves=3, n_remaps=400)
N_BATCHES = 6
WATCHED = "intradomain_share"


def _cli_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return env


def _run_cli(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        check=check,
        env=_cli_env(),
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def _popen_cli(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_cli_env(),
        cwd=REPO_ROOT,
    )


def _read_until(proc: subprocess.Popen, pattern: re.Pattern,
                timeout_s: float = 300.0) -> re.Match:
    deadline = time.monotonic() + timeout_s
    seen: list[str] = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        assert line, (
            f"process exited ({proc.poll()}) before {pattern.pattern!r}; "
            f"output: {seen[-5:]}"
        )
        seen.append(line.strip())
        match = pattern.search(line)
        if match:
            return match
    raise AssertionError(
        f"no match for {pattern.pattern!r} in {timeout_s}s: {seen[-5:]}"
    )


def _scrape_gauges(metrics_url: str) -> dict[str, float]:
    body = urllib.request.urlopen(f"{metrics_url}/metrics").read().decode()
    gauges: dict[str, float] = {}
    for line in body.splitlines():
        if line.startswith("#") or " " not in line:
            continue
        name, _, value = line.rpartition(" ")
        try:
            gauges[name] = float(value)
        except ValueError:
            continue
    return gauges


def _wait_analyzed(metrics_url: str, gen: int,
                   timeout_s: float = 180.0) -> dict[str, float]:
    deadline = time.monotonic() + timeout_s
    gauges: dict[str, float] = {}
    while time.monotonic() < deadline:
        gauges = _scrape_gauges(metrics_url)
        if gauges.get("repro_analytics_analyzed_gen", 0.0) >= gen:
            return gauges
        time.sleep(0.25)
    raise AssertionError(
        f"analytics never reached gen {gen}: "
        f"{gauges.get('repro_analytics_analyzed_gen')}"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="analytics-smoke-") as tmp:
        tmp_path = Path(tmp)
        snap = tmp_path / "base.npz"
        spool = tmp_path / "spool"
        ing_dir = tmp_path / "ingest"
        spool.mkdir()

        print("== building base snapshot and delta spool ==", flush=True)
        _run_cli("snapshot", "--scale", "small", "--out", str(snap))
        base = load_dataset(snap)
        stream = DeltaStream(base, np.random.default_rng(5))
        for i in range(N_BATCHES):
            shape = DRIFT if i == N_BATCHES - 1 else BENIGN
            save_delta(
                stream.next_batch(**shape), spool / f"delta-{i:03d}.npz"
            )

        print("== ingesting with live analytics ==", flush=True)
        ingest = _popen_cli(
            "ingest", "run", "--base", str(snap), "--out", str(ing_dir),
            "--spool", str(spool), "--publish-batches", "1",
            "--publish-age-s", "3600", "--metrics-port", "0",
            "--analytics", "--drift-metrics", WATCHED,
            "--drift-warmup", "4",
        )
        try:
            # The analytics line precedes the pid banner.
            db = _read_until(ingest, ANALYTICS_RE).group("db")
            banner = _read_until(ingest, INGEST_RE)
            assert banner.group("seq") == "0", banner.group(0)
            metrics_url = _read_until(ingest, METRICS_RE).group("url")

            # Base gen 1 + six published batches = gen 7 analyzed.
            gauges = _wait_analyzed(metrics_url, 1 + N_BATCHES)
            assert gauges["repro_analytics_alerts_total"] == 1.0, gauges
            print(
                f"analyzed gen "
                f"{gauges['repro_analytics_analyzed_gen']:.0f}, "
                f"{gauges['repro_analytics_alerts_total']:.0f} drift "
                f"alert on /metrics",
                flush=True,
            )

            status = _run_cli("ingest", "status", "--out", str(ing_dir))
            facts = json.loads(status.stdout)
            analytics = facts["analytics"]
            assert analytics["analyzed_gen"] == 1 + N_BATCHES, analytics
            assert analytics["lag"] == 0, analytics
            print(
                f"ingest status: analytics lag {analytics['lag']}, "
                f"{analytics['alerts']} recorded alerts",
                flush=True,
            )

            ingest.send_signal(signal.SIGINT)
            assert ingest.wait(timeout=60) == 0
            ingest = None
        finally:
            if ingest is not None and ingest.poll() is None:
                ingest.kill()
                ingest.wait(timeout=30)

        print("== repro analytics status/history/diff ==", flush=True)
        status = _run_cli("analytics", "status", "--db", db)
        report = json.loads(status.stdout)
        assert report["generations"] >= 2, report
        assert report["triggers"] == 1, report
        triggers = [
            a for a in report["alerts"] if a["kind"] == "trigger"
        ]
        assert len(triggers) == 1 and triggers[0]["metric"] == WATCHED, (
            report["alerts"]
        )
        assert report["latest"]["gen"] == 1 + N_BATCHES, report["latest"]
        print(
            f"{report['generations']} generations stored, 1 trigger on "
            f"{WATCHED} at gen {triggers[0]['gen']}",
            flush=True,
        )

        history = _run_cli(
            "analytics", "history", "--db", db, "--metric", WATCHED
        )
        rows = [
            line for line in history.stdout.splitlines()[1:] if line.strip()
        ]
        assert len(rows) == report["generations"], history.stdout
        print(f"history renders {len(rows)} points", flush=True)

        diff = _run_cli(
            "analytics", "diff", "--db", db, "--threshold", "0.05",
            check=False,
        )
        assert diff.returncode == 1, (diff.returncode, diff.stdout)
        assert WATCHED in diff.stdout, diff.stdout
        print("diff flags the drifted generation", flush=True)

        print("== offline replay is idempotent ==", flush=True)
        replay = _run_cli(
            "analytics", "run", "--base", str(snap),
            "--wal", str(ing_dir / "ingest.wal"), "--db", db,
            "--drift-metrics", WATCHED, "--drift-warmup", "4",
        )
        summary = json.loads(replay.stdout)
        assert summary["final_gen"] == 1 + N_BATCHES, summary
        assert summary["new_alerts"] == 0, summary
        # The offline pass also stores the base generation the live
        # observer never published; re-running adds nothing further.
        again = json.loads(
            _run_cli(
                "analytics", "run", "--base", str(snap),
                "--wal", str(ing_dir / "ingest.wal"), "--db", db,
                "--drift-metrics", WATCHED, "--drift-warmup", "4",
            ).stdout
        )
        assert again["generations_stored"] == summary["generations_stored"]
        assert again["new_alerts"] == 0, again
        report = json.loads(
            _run_cli("analytics", "status", "--db", db).stdout
        )
        assert report["triggers"] == 1, report
        print(
            f"replay stored {summary['generations_stored']} generations, "
            f"0 new alerts across two re-runs",
            flush=True,
        )

    print("analytics smoke: ALL OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"({time.perf_counter() - start:.1f}s)")
    sys.exit(code)
