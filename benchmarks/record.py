"""Shared benchmark-record writer: one envelope format for every bench.

Every benchmark that persists machine-readable results routes them
through :func:`record_bench`, which writes

- ``BENCH_<bench>.json`` — the latest run's full payload in a common
  envelope (schema, machine fingerprint, git revision, timestamp,
  direction-tagged headline metrics, raw data), and
- ``BENCH_history.jsonl`` — an append-only line per (bench, git
  revision) carrying just the headline, so successive PRs accumulate a
  per-revision performance trajectory.

``repro bench history`` (backed by :mod:`repro.obs.benchtrend`, the
in-package reader) renders that trajectory as a trend table and flags
direction-aware regressions between the two latest revisions.

The envelope intentionally replaces the earlier ad-hoc per-bench
schemas (``repro-bench-serve`` etc.); nothing consumed those
programmatically, and a single schema is what makes cross-bench
trending possible.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any

#: Common envelope identifier (matches repro.obs.benchtrend.BENCH_SCHEMA).
SCHEMA = "repro-bench"
SCHEMA_VERSION = 1

#: Repo root — bench records live next to README.md.
ROOT = Path(__file__).resolve().parents[1]

HISTORY_NAME = "BENCH_history.jsonl"


def machine_info() -> dict[str, Any]:
    """A coarse host fingerprint for judging result comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 0,
    }


def git_rev(root: Path | None = None) -> str:
    """The current short git revision, or "" outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root or ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def _normalise_headline(
    headline: dict[str, Any] | None,
) -> dict[str, dict[str, Any]]:
    """Accept ``{"name": value}``, ``{"name": (value, "lower")}``, or the
    full ``{"name": {"value": ..., "better": ...}}`` form."""
    out: dict[str, dict[str, Any]] = {}
    for name, record in (headline or {}).items():
        if isinstance(record, dict):
            out[name] = {
                "value": float(record["value"]),
                "better": str(record.get("better", "lower")),
            }
        elif isinstance(record, (tuple, list)) and len(record) == 2:
            out[name] = {"value": float(record[0]), "better": str(record[1])}
        else:
            out[name] = {"value": float(record), "better": "lower"}
    return out


def record_bench(
    bench: str,
    data: dict[str, Any],
    headline: dict[str, Any] | None = None,
    *,
    merge: bool = False,
    root: Path | None = None,
) -> Path:
    """Write one benchmark's record in the common envelope.

    Args:
        bench: benchmark name; results land in ``BENCH_<bench>.json``.
        data: the raw result payload (bench-specific shape).
        headline: trend-tracked metrics — ``{"p99_ms": (1.2, "lower")}``
            style (see :func:`_normalise_headline` for accepted forms).
        merge: when True, ``data`` and ``headline`` update the existing
            envelope instead of replacing it — for benches whose
            scenarios run as separate tests writing one record.
        root: destination directory (default: the repo root).

    Returns:
        The path of the written ``BENCH_<bench>.json``.
    """
    destination = Path(root) if root is not None else ROOT
    path = destination / f"BENCH_{bench}.json"
    envelope: dict[str, Any] = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "created_unix": time.time(),
        "machine": machine_info(),
        "git_rev": git_rev(destination),
        "headline": {},
        "data": {},
    }
    if merge and path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if (
                isinstance(existing, dict)
                and existing.get("schema") == SCHEMA
                and existing.get("bench") == bench
            ):
                envelope["headline"] = dict(existing.get("headline", {}))
                envelope["data"] = dict(existing.get("data", {}))
        except (OSError, ValueError):
            pass
    envelope["data"].update(data)
    envelope["headline"].update(_normalise_headline(headline))
    path.write_text(json.dumps(envelope, indent=2) + "\n", encoding="utf-8")
    _update_history(destination, envelope)
    return path


def _update_history(destination: Path, envelope: dict[str, Any]) -> None:
    """Upsert this (bench, git_rev) run's headline into the history.

    Re-running a bench at the same revision replaces its line (the
    history tracks revisions, not invocations); a new revision appends.
    """
    history = destination / HISTORY_NAME
    line_payload = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "bench": envelope["bench"],
        "git_rev": envelope["git_rev"],
        "created_unix": envelope["created_unix"],
        "machine": envelope["machine"],
        "headline": envelope["headline"],
    }
    lines: list[str] = []
    if history.exists():
        try:
            raw_lines = history.read_text(encoding="utf-8").splitlines()
        except OSError:
            raw_lines = []
        for raw in raw_lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                parsed = json.loads(raw)
            except ValueError:
                continue
            if (
                parsed.get("bench") == envelope["bench"]
                and parsed.get("git_rev") == envelope["git_rev"]
            ):
                continue  # replaced by this run
            lines.append(raw)
    lines.append(json.dumps(line_payload, sort_keys=False))
    history.write_text("\n".join(lines) + "\n", encoding="utf-8")
