"""Benchmark: incremental snapshot patching vs full index rebuild.

Streaming ingestion's reason to exist is that patching the serving
index with one delta batch is much cheaper than rebuilding it from the
grown dataset — that is what turns measurement arrival into servable
freshness in well under a second.  Incremental patching is O(delta +
dirty ASes) while a rebuild is O(nodes + ASes), so the gap is a
function of snapshot size; the bench therefore tiles the
small-scenario snapshot 12x (~35k nodes, ~900 ASes — the shape of the
default scenario, without its multi-minute pipeline) and drives the
same delta stream through both paths:

- **incremental** — ``SnapshotIndex.apply_delta`` per batch (includes
  the dataset patch itself);
- **rebuild** — ``SnapshotIndex(dataset)`` from scratch over each
  successive post-batch dataset (the dataset patch is *excluded* from
  the timed region, which is generous to the rebuild side).

Acceptance: the mean incremental patch must be at least **5x** faster
than the mean full rebuild, and both paths must agree bit-for-bit on
the final content hash (the differential guarantee, re-checked here so
the speedup can never come from skipped work).  A second stage runs a
real :class:`~repro.ingest.runner.Ingester` at publish-every-batch
cadence and reports end-to-end freshness (arrival stamp → verified
generation on disk) as a p99.

Machine-readable results land in ``BENCH_ingest.json`` at the repo
root via :mod:`record`.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from record import record_bench

from repro.config import small_scenario
from repro.datasets.mapped import MappedDataset
from repro.datasets.pipeline import run_pipeline
from repro.ingest import Ingester, patch_dataset
from repro.measure.stream import DeltaStream
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.serve import SnapshotIndex

N_COPIES = 12
N_BATCHES = 10
N_FRESHNESS_BATCHES = 20
MIN_SPEEDUP = 5.0
#: Timed-batch shape: 8 new interfaces, 6 new adjacencies, 4
#: geolocation refinements, 2 AS remaps per arrival.
BATCH_SHAPE = dict(n_adds=8, n_links=6, n_moves=4, n_remaps=2)


def _tiled(dataset: MappedDataset, copies: int) -> MappedDataset:
    """Tile a snapshot ``copies`` times with disjoint addresses, AS
    numbers, and slightly shifted coordinates — default-scenario size
    from the small scenario's seconds-long pipeline."""
    span = int(dataset.addresses.max()) + 1000
    n = dataset.n_nodes
    parts = range(copies)
    return MappedDataset(
        label=f"{dataset.label}-x{copies}",
        kind=dataset.kind,
        addresses=np.concatenate(
            [dataset.addresses + i * span for i in parts]
        ),
        lats=np.concatenate(
            [np.clip(dataset.lats + 0.01 * i, -90.0, 90.0) for i in parts]
        ),
        lons=np.concatenate(
            [np.clip(dataset.lons + 0.01 * i, -180.0, 180.0) for i in parts]
        ),
        asns=np.concatenate(
            [
                np.where(dataset.asns > 0, dataset.asns + 10_000 * i,
                         dataset.asns)
                for i in parts
            ]
        ),
        links=np.concatenate([dataset.links + i * n for i in parts]),
    )


@pytest.fixture(scope="module")
def dataset():
    small = run_pipeline(small_scenario()).dataset("IxMapper", "Skitter")
    return _tiled(small, N_COPIES)


def test_bench_ingest_incremental_vs_rebuild(
    dataset, tmp_path, record_artifact
):
    stream = DeltaStream(dataset, np.random.default_rng(31))
    batches = [
        stream.next_batch(**BATCH_SHAPE) for _ in range(N_BATCHES)
    ]

    # Incremental: patch the live index batch by batch.
    index = SnapshotIndex(dataset)
    incremental_s = []
    for batch in batches:
        start = time.perf_counter()
        index = index.apply_delta(batch)
        incremental_s.append(time.perf_counter() - start)

    # Rebuild: from-scratch index over each successive dataset (the
    # dataset patch itself is excluded — generous to this side).
    current = dataset
    rebuild_s = []
    fresh = None
    for batch in batches:
        current, _ = patch_dataset(current, batch)
        start = time.perf_counter()
        fresh = SnapshotIndex(current)
        rebuild_s.append(time.perf_counter() - start)

    # The speedup must never come from skipped work.
    assert fresh is not None
    assert index.snapshot_hash == fresh.snapshot_hash

    mean_incremental = float(np.mean(incremental_s))
    mean_rebuild = float(np.mean(rebuild_s))
    speedup = mean_rebuild / mean_incremental
    assert speedup >= MIN_SPEEDUP, (
        f"incremental patch only {speedup:.1f}x faster than rebuild "
        f"({mean_incremental * 1e3:.1f}ms vs {mean_rebuild * 1e3:.1f}ms)"
    )

    # End-to-end freshness through a real ingester, publish-per-batch.
    registry = MetricsRegistry()
    freshness_s = []
    with use_metrics(registry):
        stream = DeltaStream(dataset, np.random.default_rng(32))
        with Ingester(
            dataset, tmp_path / "ingest", publish_batches=1
        ) as ingester:
            for _ in range(N_FRESHNESS_BATCHES):
                batch = stream.next_batch().stamped(time.time())
                ingester.submit(batch)  # publishes before returning
                freshness_s.append(time.time() - batch.created_unix)
    histogram = registry.histogram("ingest.freshness_s")
    assert histogram.count == N_FRESHNESS_BATCHES
    p99 = float(np.percentile(freshness_s, 99))
    p50 = float(np.percentile(freshness_s, 50))

    payload = {
        "scenario": "ingest-incremental-vs-rebuild",
        "n_nodes_base": dataset.n_nodes,
        "n_batches": N_BATCHES,
        "batch_shape": BATCH_SHAPE,
        "incremental_ms": [round(s * 1e3, 3) for s in incremental_s],
        "rebuild_ms": [round(s * 1e3, 3) for s in rebuild_s],
        "mean_incremental_ms": round(mean_incremental * 1e3, 3),
        "mean_rebuild_ms": round(mean_rebuild * 1e3, 3),
        "speedup": round(speedup, 2),
        "final_hash_match": True,
        "n_freshness_batches": N_FRESHNESS_BATCHES,
        "freshness_p50_s": round(p50, 4),
        "freshness_p99_s": round(p99, 4),
    }
    record_bench(
        "ingest",
        payload,
        headline={
            "incremental_speedup_vs_rebuild": (speedup, "higher"),
            "freshness_p99_s": (p99, "lower"),
        },
    )
    record_artifact(
        "ingest_speedup",
        (
            f"incremental patch: {mean_incremental * 1e3:.1f}ms/batch vs "
            f"full rebuild {mean_rebuild * 1e3:.1f}ms "
            f"({speedup:.1f}x, identical final hash)\n"
            f"publish-per-batch freshness: p50 {p50 * 1e3:.0f}ms, "
            f"p99 {p99 * 1e3:.0f}ms over {N_FRESHNESS_BATCHES} batches\n"
        ),
    )
