"""Topology-scale benchmark: generate + measure at small/default/large.

Times the three hot substrate stages (ground-truth generation, the
Skitter campaign, the Mercator campaign) against the pre-refactor
object-per-element topology and writes ``BENCH_topology.json`` at the
repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_topology_scale.py
    PYTHONPATH=src python benchmarks/bench_topology_scale.py --scales large --generate-only

The recorded baselines are the PR-2 ``BENCH_stages.json`` stage
timings (small scale) and the same three stages measured from the last
pre-refactor commit at default scale on the same machine.  The script
asserts the array-native core's combined generate+measure speedup at
default scale meets ``SPEEDUP_FLOOR``, and that small-scale peak RSS
has not regressed past the recorded baseline (with a noise allowance).

Scales run in ascending size order so the small-scale peak-RSS sample
is taken before larger scenarios inflate the process high-water mark.
"""

from __future__ import annotations

import argparse
import resource
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import default_scenario, large_scenario, small_scenario
from repro.measure.mercator import run_mercator
from repro.measure.skitter import run_skitter
from repro.net.generate import generate_ground_truth
from repro.population.worldmodel import build_world

#: Pre-refactor stage wall times in seconds.  ``small`` is the PR-2
#: ``BENCH_stages.json`` record; ``default`` was measured from the last
#: pre-refactor commit immediately before the array-native core landed.
BASELINES = {
    "small": {
        "ground_truth": 0.470069,
        "skitter": 0.143550,
        "mercator": 0.056367,
        "rss_mb": 86.07,
    },
    "default": {
        "ground_truth": 10.033,
        "skitter": 2.799,
        "mercator": 0.804,
        "rss_mb": None,
    },
}

#: Required combined generate+measure speedup at default scale.
SPEEDUP_FLOOR = 3.0

#: Peak-RSS regression allowance over the recorded small-scale baseline
#: (run-to-run allocator noise, not a real budget increase).
RSS_TOLERANCE = 1.10

_SCENARIOS = {
    "small": small_scenario,
    "default": default_scenario,
    "large": large_scenario,
}
_ORDER = ("small", "default", "large")


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_scale(name: str, generate_only: bool) -> dict:
    """Generate and (optionally) measure one scenario, timing each stage."""
    config = _SCENARIOS[name]()
    rng = np.random.default_rng(config.seed)
    world = build_world(rng, city_scale=config.city_scale)

    start = time.perf_counter()
    topology, _, _ = generate_ground_truth(world, config.ground_truth, rng)
    generation_s = time.perf_counter() - start

    record = {
        "n_routers": topology.n_routers,
        "n_links": topology.n_links,
        "n_interfaces": topology.n_interfaces,
        "ground_truth_s": round(generation_s, 6),
        "routers_per_sec": round(topology.n_routers / generation_s, 1),
    }
    if not generate_only:
        start = time.perf_counter()
        skitter = run_skitter(topology, config.skitter, rng)
        skitter_s = time.perf_counter() - start
        start = time.perf_counter()
        mercator = run_mercator(topology, config.mercator, rng)
        mercator_s = time.perf_counter() - start
        record.update(
            skitter_s=round(skitter_s, 6),
            mercator_s=round(mercator_s, 6),
            combined_s=round(generation_s + skitter_s + mercator_s, 6),
            skitter_nodes=skitter.n_nodes,
            mercator_nodes=mercator.n_nodes,
        )
    record["peak_rss_mb"] = round(_peak_rss_mb(), 2)
    return record


def _check(results: dict, skip_checks: bool) -> list[str]:
    """Speedup and RSS assertions; returns failure messages."""
    failures: list[str] = []
    speedups: dict[str, dict] = {}
    for scale, baseline in BASELINES.items():
        record = results.get(scale)
        if record is None or "combined_s" not in record:
            continue
        base_combined = (
            baseline["ground_truth"] + baseline["skitter"] + baseline["mercator"]
        )
        speedups[scale] = {
            "ground_truth": round(
                baseline["ground_truth"] / record["ground_truth_s"], 2
            ),
            "skitter": round(baseline["skitter"] / record["skitter_s"], 2),
            "mercator": round(baseline["mercator"] / record["mercator_s"], 2),
            "combined": round(base_combined / record["combined_s"], 2),
        }
    results["speedup_vs_baseline"] = speedups
    if skip_checks:
        return failures
    if "default" in speedups:
        combined = speedups["default"]["combined"]
        if combined < SPEEDUP_FLOOR:
            failures.append(
                f"default-scale combined speedup {combined:.2f}x "
                f"below the {SPEEDUP_FLOOR}x floor"
            )
    small = results.get("small")
    if small is not None:
        budget = BASELINES["small"]["rss_mb"] * RSS_TOLERANCE
        if small["peak_rss_mb"] > budget:
            failures.append(
                f"small-scale peak RSS {small['peak_rss_mb']:.1f} MB exceeds "
                f"the {budget:.1f} MB baseline budget"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales",
        nargs="+",
        choices=_ORDER,
        default=["small", "default"],
        help="scenario sizes to benchmark (run in ascending order)",
    )
    parser.add_argument(
        "--generate-only",
        action="store_true",
        help="skip the measurement campaigns (generation smoke mode)",
    )
    parser.add_argument(
        "--skip-checks",
        action="store_true",
        help="record timings without asserting speedup/RSS floors",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_topology.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)

    results: dict = {}
    for scale in _ORDER:
        if scale not in args.scales:
            continue
        record = bench_scale(scale, generate_only=args.generate_only)
        results[scale] = record
        stages = f"gen={record['ground_truth_s']}s"
        if "combined_s" in record:
            stages += (
                f" skitter={record['skitter_s']}s"
                f" mercator={record['mercator_s']}s"
            )
        print(
            f"{scale}: {record['n_routers']} routers, {stages}, "
            f"{record['routers_per_sec']:.0f} routers/s, "
            f"rss={record['peak_rss_mb']} MB"
        )

    failures = _check(results, skip_checks=args.skip_checks or args.generate_only)
    payload = {
        "speedup_floor": SPEEDUP_FLOOR,
        "baseline": BASELINES,
        "results": results,
        "failures": failures,
    }
    # The output filename doubles as the bench name (BENCH_<name>.json),
    # so --output BENCH_topology_large.json trends separately from the
    # default small/default-scale record.
    from record import record_bench

    bench_name = args.output.stem.removeprefix("BENCH_") or "topology"
    headline: dict = {}
    for scale in reversed(_ORDER):
        record = results.get(scale)
        if record and "routers_per_sec" in record:
            headline[f"{scale}_routers_per_sec"] = (
                record["routers_per_sec"],
                "higher",
            )
            break
    small = results.get("small")
    if small is not None:
        headline["small_peak_rss_mb"] = (small["peak_rss_mb"], "lower")
    written = record_bench(
        bench_name, payload, headline=headline, root=args.output.parent
    )
    print(f"wrote {written}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
