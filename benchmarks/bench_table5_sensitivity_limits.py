"""T5 — Table V: limits of distance sensitivity.

Paper: equating the small-d exponential fit with the large-d mean gives
a per-region limit; 75-95% of links are shorter than it (US 77-82%,
Europe 95-97%, Japan 92-93%), consistently across both datasets.
"""

from repro.core import report
from repro.core.distance import sensitivity_limit
from repro.core.experiments import Table5Row


def _rows_from_panels(panels):
    rows = []
    for (measurement, region), pref in sorted(panels.items()):
        rows.append(
            Table5Row(
                measurement=measurement,
                region=region,
                limit=sensitivity_limit(pref),
            )
        )
    return rows


def test_table5_sensitivity_limits(
    ixmapper_panels, benchmark, record_artifact
):
    rows = benchmark.pedantic(
        _rows_from_panels, args=(ixmapper_panels,), rounds=1, iterations=1
    )
    record_artifact("table5_sensitivity_limits", report.render_table5(rows))

    by_key = {(r.measurement, r.region): r.limit for r in rows}
    assert len(rows) == 6  # 2 datasets x 3 regions at full scale
    for limit in by_key.values():
        # The paper band: the distance-sensitive regime covers 75-95%+
        # of links in every panel.
        assert limit.fraction_below > 0.70
        assert limit.limit_miles > 50.0
    # Cross-dataset consistency (the paper's "strikingly consistent").
    for region in ("US", "Europe"):
        a = by_key[("Mercator", region)].fraction_below
        b = by_key[("Skitter", region)].fraction_below
        assert abs(a - b) < 0.12
    # Europe's distance sensitivity covers more links than the US's,
    # as in the paper (95-97% vs 77-82%).
    assert (
        by_key[("Skitter", "Europe")].fraction_below
        > by_key[("Skitter", "US")].fraction_below
    )
