"""Benchmark: incremental analytics update vs from-scratch recompute.

Continuous analytics exists because re-deriving the paper's headline
metrics for every published generation is quadratic in region size
(pair counting dominates), while the incremental
:class:`~repro.analytics.engine.AnalyticsEngine` pays only for the rows
a delta touched.  The bench drives one delta stream through both
paths over the small-scenario snapshot:

- **incremental** — ``engine.apply`` + ``engine.metrics()`` per
  generation, the live observer's per-publish work;
- **recompute** — a fresh ``AnalyticsEngine`` seeded from each
  successive post-batch dataset plus its ``metrics()``, i.e. what a
  per-generation batch job would pay (index patching is excluded from
  both timed regions — both sides receive the patched index for free).

Acceptance: the mean incremental update must be at least **3x** faster
than the mean recompute, and the two paths must agree on the final
maintained state bit for bit (integer histograms and tallies) so the
speedup can never come from skipped or approximated work.

Machine-readable results land in ``BENCH_analytics.json`` at the repo
root via :mod:`record`.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from record import record_bench

from repro.analytics import AnalyticsEngine
from repro.config import small_scenario
from repro.datasets.pipeline import run_pipeline
from repro.measure.stream import DeltaStream
from repro.serve import SnapshotIndex

N_BATCHES = 8
MIN_SPEEDUP = 3.0
#: Timed-batch shape: the bench_ingest arrival mix.
BATCH_SHAPE = dict(n_adds=8, n_links=6, n_moves=4, n_remaps=2)


@pytest.fixture(scope="module")
def pipeline():
    return run_pipeline(small_scenario())


def test_bench_analytics_incremental_vs_recompute(pipeline, record_artifact):
    dataset = pipeline.dataset("IxMapper", "Skitter")
    field = pipeline.world.field

    # Pre-apply every batch outside the timed regions so both sides
    # measure pure analytics work against identical indexes.
    stream = DeltaStream(dataset, np.random.default_rng(67))
    generations = []
    index = SnapshotIndex(dataset)
    for _ in range(N_BATCHES):
        batch = stream.next_batch(**BATCH_SHAPE)
        index = index.apply_delta(batch)
        generations.append((batch, index))

    engine = AnalyticsEngine(
        dataset, population=field, index=SnapshotIndex(dataset)
    )
    incremental_s = []
    for batch, gen_index in generations:
        start = time.perf_counter()
        engine.apply(batch, gen_index)
        metrics = engine.metrics()
        incremental_s.append(time.perf_counter() - start)

    recompute_s = []
    fresh = None
    for _batch, gen_index in generations:
        start = time.perf_counter()
        fresh = AnalyticsEngine(
            gen_index.dataset, population=field, index=gen_index
        )
        fresh_metrics = fresh.metrics()
        recompute_s.append(time.perf_counter() - start)

    # Differential guarantee: the fast path maintained exactly the
    # state the slow path just rebuilt.
    assert fresh is not None
    for name, state in engine.regions.items():
        other = fresh.regions[name]
        assert np.array_equal(state.pair_counts, other.pair_counts)
        assert np.array_equal(state.link_counts, other.link_counts)
        assert np.array_equal(state.occupancy, other.occupancy)
    assert set(metrics) == set(fresh_metrics)
    for name, value in metrics.items():
        assert value == pytest.approx(fresh_metrics[name], rel=1e-9)

    mean_incremental = float(np.mean(incremental_s))
    mean_recompute = float(np.mean(recompute_s))
    speedup = mean_recompute / mean_incremental
    assert speedup >= MIN_SPEEDUP, (
        f"incremental analytics only {speedup:.1f}x faster than recompute "
        f"({mean_incremental * 1e3:.1f}ms vs {mean_recompute * 1e3:.1f}ms)"
    )

    payload = {
        "scenario": "analytics-incremental-vs-recompute",
        "n_nodes_base": dataset.n_nodes,
        "n_batches": N_BATCHES,
        "batch_shape": BATCH_SHAPE,
        "incremental_ms": [round(s * 1e3, 3) for s in incremental_s],
        "recompute_ms": [round(s * 1e3, 3) for s in recompute_s],
        "mean_incremental_ms": round(mean_incremental * 1e3, 3),
        "mean_recompute_ms": round(mean_recompute * 1e3, 3),
        "speedup": round(speedup, 2),
        "state_bit_identical": True,
        "n_metrics": len(metrics),
    }
    record_bench(
        "analytics",
        payload,
        headline={
            "incremental_speedup_vs_recompute": (speedup, "higher"),
            "incremental_update_ms": (
                round(mean_incremental * 1e3, 3), "lower"
            ),
        },
    )
    record_artifact(
        "analytics_speedup",
        (
            f"incremental metric update: {mean_incremental * 1e3:.1f}ms/gen "
            f"vs from-scratch recompute {mean_recompute * 1e3:.1f}ms "
            f"({speedup:.1f}x, bit-identical state, "
            f"{len(metrics)} metrics/gen)\n"
        ),
    )
