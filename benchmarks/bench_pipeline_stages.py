"""Performance benchmarks for the pipeline's heavy stages.

These are conventional pytest-benchmark timings (multiple rounds) of
the substrate kernels, at reduced scale so rounds stay fast: world
synthesis, ground-truth generation, Skitter/Mercator campaigns,
geolocation + AS mapping, and the exact pair-count kernel — plus the
staged runtime's own per-stage telemetry baseline and the
``locate_many`` batch-vs-scalar contrast on the mapping hot path.
"""

import time

import numpy as np
import pytest

from repro.bgp.routeviews import build_routeviews_snapshot
from repro.config import (
    BgpConfig,
    GroundTruthConfig,
    MercatorConfig,
    SkitterConfig,
)
from repro.core.distance import exact_pair_counts
from repro.datasets.pipeline import build_snapshot
from repro.geoloc.base import build_context
from repro.geoloc.ixmapper import IxMapper
from repro.measure.artifacts import clean_inventory
from repro.measure.mercator import run_mercator
from repro.measure.skitter import run_skitter
from repro.net.generate import generate_ground_truth
from repro.population.worldmodel import build_world


@pytest.fixture(scope="module")
def bench_world():
    return build_world(np.random.default_rng(8), city_scale=0.5)


@pytest.fixture(scope="module")
def bench_truth(bench_world):
    config = GroundTruthConfig(
        total_routers=5_000, n_ases=200, tier1_count=8, tier2_count=40
    )
    return generate_ground_truth(
        bench_world, config, np.random.default_rng(9)
    )


def test_bench_world_synthesis(benchmark):
    benchmark(lambda: build_world(np.random.default_rng(1), city_scale=0.5))


def test_bench_ground_truth_generation(benchmark, bench_world):
    config = GroundTruthConfig(
        total_routers=3_000, n_ases=120, tier1_count=6, tier2_count=24
    )

    benchmark(
        lambda: generate_ground_truth(
            bench_world, config, np.random.default_rng(2)
        )
    )


def test_bench_skitter_campaign(benchmark, bench_truth):
    topology, _, _ = bench_truth
    config = SkitterConfig(n_monitors=8, destinations_per_monitor=800)

    benchmark(lambda: run_skitter(topology, config, np.random.default_rng(3)))


def test_bench_mercator_campaign(benchmark, bench_truth):
    topology, _, _ = bench_truth
    config = MercatorConfig(n_targets=1_200, n_source_routed=500)

    benchmark(lambda: run_mercator(topology, config, np.random.default_rng(4)))


def test_bench_geolocation_and_as_mapping(benchmark, bench_world, bench_truth):
    topology, plan, _ = bench_truth
    rng = np.random.default_rng(5)
    from repro.config import GeolocConfig

    context = build_context(bench_world, topology, plan, GeolocConfig(), rng)
    table = build_routeviews_snapshot(plan, BgpConfig(), rng)
    inventory = run_skitter(
        topology,
        SkitterConfig(n_monitors=6, destinations_per_monitor=600),
        rng,
    )
    cleaned, _ = clean_inventory(inventory)

    def map_once():
        mapper = IxMapper(context, np.random.default_rng(6))
        return build_snapshot(cleaned, mapper, table, "bench")

    benchmark(map_once)


def test_bench_exact_pair_counts(benchmark):
    rng = np.random.default_rng(7)
    lats = rng.uniform(26, 49, 4_000)
    lons = rng.uniform(-124, -66, 4_000)

    benchmark(lambda: exact_pair_counts(lats, lons, 35.0, 100))


# --- Staged runtime -----------------------------------------------------------


def test_pipeline_stage_timing_baseline(record_artifact):
    """Record the per-stage telemetry profile of one reduced-scale run.

    The written artefact is the timing baseline for the staged runtime:
    wall time, RSS high-water mark, and node/link counters per stage.
    Besides the rendered table, the same events land machine-readable in
    ``BENCH_stages.json`` at the repo root, so successive sessions
    accumulate a comparable perf trajectory (and ``repro report diff``
    has a stable counter baseline to check against).
    """
    from repro.config import small_scenario
    from repro.datasets.pipeline import build_pipeline_graph, run_pipeline
    from repro.runtime import Telemetry

    telemetry = Telemetry()
    run_pipeline(small_scenario(), telemetry=telemetry)
    assert {e.stage for e in telemetry.events} == set(
        build_pipeline_graph().names
    )
    record_artifact("pipeline_stage_profile", telemetry.render_profile())

    events = sorted(telemetry.events, key=lambda e: (e.start_s, e.stage))
    from record import record_bench

    total_wall_s = round(telemetry.total_wall_s(), 6)
    record_bench(
        "stages",
        {
            "scale": "small",
            "total_wall_s": total_wall_s,
            "stages": [e.to_dict() for e in events],
        },
        headline={"total_wall_s": (total_wall_s, "lower")},
    )


def test_locate_many_speedup_visible(bench_world, bench_truth):
    """The batched mapping hot path beats per-address locate calls.

    Runs the same IxMapper pass over the same inventory through
    ``build_snapshot`` twice — once with the tool's vectorised
    ``locate_many``, once with the batch API hidden so the per-address
    fallback loop runs — and asserts the batch path is faster (best of
    three, equal results).
    """
    from repro.datasets.pipeline import build_snapshot

    topology, plan, _ = bench_truth
    rng = np.random.default_rng(5)
    from repro.config import GeolocConfig

    context = build_context(bench_world, topology, plan, GeolocConfig(), rng)
    table = build_routeviews_snapshot(plan, BgpConfig(), rng)
    inventory = run_skitter(
        topology,
        SkitterConfig(n_monitors=8, destinations_per_monitor=1_200),
        rng,
    )
    cleaned, _ = clean_inventory(inventory)

    class _ScalarOnly:
        """Wraps a mapper, hiding locate_many to force the scalar loop."""

        def __init__(self, inner):
            self._inner = inner

        name = "IxMapper"

        def locate(self, address):
            return self._inner.locate(address)

    def timed(make_mapper):
        best = float("inf")
        snapshot = None
        for _ in range(3):
            mapper = make_mapper()
            start = time.perf_counter()
            snapshot = build_snapshot(cleaned, mapper, table, "bench")
            best = min(best, time.perf_counter() - start)
        return best, snapshot

    batch_s, (batch_ds, _) = timed(
        lambda: IxMapper(context, np.random.default_rng(6))
    )
    scalar_s, (scalar_ds, _) = timed(
        lambda: _ScalarOnly(IxMapper(context, np.random.default_rng(6)))
    )
    assert np.array_equal(batch_ds.addresses, scalar_ds.addresses)
    assert np.array_equal(batch_ds.lats, scalar_ds.lats)
    assert batch_s < scalar_s, (
        f"batched mapping ({batch_s:.3f}s) not faster than "
        f"scalar loop ({scalar_s:.3f}s)"
    )
