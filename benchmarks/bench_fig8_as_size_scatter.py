"""F8 — Figure 8: scatterplots of AS size measure pairs.

Paper: all three pairs (interfaces~locations, interfaces~degree,
locations~degree) are correlated; interfaces~locations is the tightest,
and some hostname-sloppy ASes pile hundreds of interfaces onto two
distinguishable locations (the low line in Figure 8a).
"""

from repro.core.asgeo import size_correlations


def test_fig8_as_size_scatter(asgeo_bundle, benchmark, record_artifact):
    corr = benchmark.pedantic(
        size_correlations, args=(asgeo_bundle.table,), rounds=1, iterations=1
    )
    text = "\n".join(
        [
            "FIGURE 8: AS SIZE MEASURE CORRELATIONS",
            "-" * 60,
            f"pearson(log nodes, log locations) = {corr.pearson_nodes_locations:.3f}",
            f"pearson(log nodes, log degree)    = {corr.pearson_nodes_degree:.3f}",
            f"pearson(log locations, log degree)= {corr.pearson_locations_degree:.3f}",
            f"spearman nodes~locations          = {corr.spearman_nodes_locations:.3f}",
            f"spearman nodes~degree             = {corr.spearman_nodes_degree:.3f}",
            f"spearman locations~degree         = {corr.spearman_locations_degree:.3f}",
        ]
    )
    record_artifact("fig8_as_size_scatter", text)

    # Every pair positively correlated.
    assert corr.pearson_nodes_locations > 0.6
    assert corr.pearson_nodes_degree > 0.4
    assert corr.pearson_locations_degree > 0.4
    # The interfaces~locations pair is the tightest (paper's strongest
    # correlation), and locations~degree is at least as strong as
    # interfaces~degree up to noise.
    assert corr.pearson_nodes_locations >= corr.pearson_nodes_degree - 0.05
    assert corr.pearson_locations_degree >= corr.pearson_nodes_degree - 0.25

    # The Figure 8(a) artefact: at least one AS with many nodes mapped
    # to very few distinct locations (whois-HQ piling from ISPs whose
    # hostnames embed no location; a few stray DNS LOC records keep the
    # count slightly above the paper's "two").
    table = asgeo_bundle.table
    piled = (table.n_nodes >= 100) & (table.n_locations <= 8)
    assert piled.any()
