"""Throughput benchmark for the sweep engine.

Measures campaign throughput (trials/min) serially (``workers=0``,
in-process) versus on a four-worker process pool.  The asserted
scenario uses sleep-dominated synthetic trials so the measured quantity
is the *engine's* dispatch concurrency — pool workers overlap their
sleeps regardless of core count, so the >= 3x acceptance holds even on
the single-core CI runners where CPU-bound trials cannot speed up.  A
tiny full-pipeline campaign is recorded alongside for context, without
an assertion.

Machine-readable results land in ``BENCH_sweep.json`` at the repo root
via :mod:`record` (the shared envelope the bench-history trend table
reads).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from record import record_bench

from repro.sweep import ResultStore, SweepSpec, run_campaign

#: Required pooled-over-serial speedup at 4 workers (synthetic trials).
MIN_SPEEDUP = 3.0

N_TRIALS = 16
SLEEP_S = 0.4
WORKERS = 4


def _spec(name: str, **kwargs) -> SweepSpec:
    base = dict(
        name=name,
        seeds=tuple(range(N_TRIALS)),
        synthetic=({"duration_s": SLEEP_S},),
        trial_timeout_s=60.0,
    )
    base.update(kwargs)
    return SweepSpec(**base)


def _run(spec: SweepSpec, tmp_path: Path, workers: int) -> dict:
    store = ResultStore(tmp_path / f"{spec.name}-w{workers}.db")
    start = time.perf_counter()
    summary = run_campaign(
        spec, store, workers=workers,
        start_method="fork" if workers else None,
    )
    wall_s = time.perf_counter() - start
    assert summary.completed == len(spec.expand())
    assert summary.failed == 0
    return {
        "workers": workers,
        "trials": summary.completed,
        "wall_s": round(wall_s, 3),
        "trials_per_min": round(60.0 * summary.completed / wall_s, 1),
    }


def test_pool_speedup_synthetic(tmp_path):
    """Four workers must clear 3x serial throughput on sleep trials."""
    serial = _run(_spec("bench-serial"), tmp_path, workers=0)
    pooled = _run(_spec("bench-pooled"), tmp_path, workers=WORKERS)
    speedup = pooled["trials_per_min"] / serial["trials_per_min"]

    pipeline_spec = SweepSpec(
        name="bench-pipeline",
        seeds=(1, 2, 3, 4),
        pipeline=({"scale": "tiny"},),
        trial_timeout_s=120.0,
    )
    pipeline = _run(pipeline_spec, tmp_path, workers=WORKERS)

    payload = {
        "synthetic": {
            "sleep_s": SLEEP_S,
            "serial": serial,
            "pooled": pooled,
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
        },
        "pipeline_tiny": pipeline,
    }
    record_bench(
        "sweep",
        payload,
        headline={
            "pool_speedup": (speedup, "higher"),
            "pooled_trials_per_min": (pooled["trials_per_min"], "higher"),
        },
    )
    print(f"\nsweep engine: {json.dumps(payload, indent=2)}")

    assert speedup >= MIN_SPEEDUP, (
        f"pooled throughput only {speedup:.2f}x serial "
        f"({pooled['trials_per_min']} vs {serial['trials_per_min']} "
        f"trials/min); need >= {MIN_SPEEDUP}x at {WORKERS} workers"
    )
