"""F9 — Figure 9: CDFs of AS convex hull size.

Paper: ~80% of ASes have one or two locations (zero hull area); the
remainder show wide variability in geographic dispersion, up to hulls
covering much of the projected world/region.
"""

import numpy as np

from repro.core.asgeo import hull_areas
from repro.geo.regions import EUROPE, US


def test_fig9_hull_cdf(result, asgeo_bundle, benchmark, record_artifact):
    dataset = result.dataset("IxMapper", "Skitter")
    us, europe = benchmark.pedantic(
        lambda: (hull_areas(dataset, region=US), hull_areas(dataset, region=EUROPE)),
        rounds=1,
        iterations=1,
    )
    world = asgeo_bundle.hulls_world

    lines = ["FIGURE 9: AS CONVEX HULL AREA CDFs", "-" * 70]
    for name, hulls in (("World", world), ("US", us), ("Europe", europe)):
        nonzero = hulls.areas[hulls.areas > 0]
        lines.append(
            f"{name:7s} ASes={hulls.areas.size:5d} zero-extent="
            f"{hulls.zero_fraction * 100:5.1f}%  max hull="
            f"{hulls.areas.max():,.0f} sq mi  median nonzero="
            f"{np.median(nonzero) if nonzero.size else 0:,.0f}"
        )
    record_artifact("fig9_hull_cdf", "\n".join(lines))

    # The large majority of ASes have zero extent (paper: ~80%).
    assert 0.5 < world.zero_fraction < 0.95
    # Among the rest, dispersion varies over orders of magnitude.
    nonzero = world.areas[world.areas > 0]
    assert nonzero.max() / nonzero.min() > 1e3
    # Regional hulls are bounded by their region boxes.
    assert us.areas.max() < world.areas.max()
    assert europe.areas.max() < us.areas.max()
    # CDFs are proper distributions.
    for hulls in (world, us, europe):
        areas, p = hulls.cdf_points()
        assert p[-1] == 1.0
        assert np.all(np.diff(areas) >= 0)
