"""X3 — Section VII claim: geography makes latency labelling easy.

The paper argues that once nodes carry geographic locations, labelling
links with latencies "can be approximated in a straightforward manner".
This bench quantifies that: for every measured link, compare the latency
predicted from the *mapped* endpoint positions against the true latency
from the ground-truth annotation.  City-granularity mapping should
predict long-haul latencies accurately (propagation dominates) while
short metro links are noisier (mapping error ~ link length).
"""

import numpy as np

from repro.core.stats import pearson_correlation
from repro.net.annotate import PER_HOP_MS, PROPAGATION_MS_PER_MILE, annotate_links


def test_x3_latency_labeling(result, benchmark, record_artifact):
    def compute():
        topology = result.topology
        annotations = annotate_links(topology)
        dataset = result.dataset("IxMapper", "Skitter")
        # Map each observed link to its ground-truth link and compare
        # predicted (mapped-geometry) vs true (annotated) latency.
        true_ms = []
        predicted_ms = []
        address_to_node = {
            int(a): i for i, a in enumerate(dataset.addresses)
        }
        mapped_lengths = dataset.link_lengths()
        for k in range(dataset.n_links):
            ia = int(dataset.links[k, 0])
            ib = int(dataset.links[k, 1])
            addr_a = int(dataset.addresses[ia])
            addr_b = int(dataset.addresses[ib])
            iface_a = topology.interfaces.get(addr_a)
            iface_b = topology.interfaces.get(addr_b)
            if iface_a is None or iface_b is None:
                continue
            try:
                link = topology.link_between(iface_a.router_id, iface_b.router_id)
            except Exception:
                continue
            true_ms.append(float(annotations.latencies_ms[link.link_id]))
            predicted_ms.append(
                float(mapped_lengths[k]) * PROPAGATION_MS_PER_MILE + PER_HOP_MS
            )
        del address_to_node
        return np.asarray(true_ms), np.asarray(predicted_ms)

    true_ms, predicted_ms = benchmark.pedantic(compute, rounds=1, iterations=1)

    errors = np.abs(predicted_ms - true_ms)
    long_haul = true_ms > 5.0  # links beyond ~570 miles
    corr = pearson_correlation(true_ms, predicted_ms)
    within_1ms = float((errors < 1.0).mean())
    lines = [
        "X3: LATENCY LABELLING FROM MAPPED GEOGRAPHY",
        "-" * 60,
        f"links compared                : {true_ms.size:,d}",
        f"correlation (true, predicted) : {corr:.3f}",
        f"median abs error              : {np.median(errors):.3f} ms",
        f"within 1 ms                   : {within_1ms:.1%}",
        f"90th pct abs error            : {np.percentile(errors, 90):.3f} ms",
        f"long-haul (> 5 ms) median relative error : "
        f"{np.median(errors[long_haul] / true_ms[long_haul]):.1%}"
        if long_haul.any()
        else "no long-haul links",
        "",
        "note: the error tail (and the depressed Pearson) comes from the",
        "small population of whois-HQ-mapped endpoints — the same mapping",
        "failure mode the paper documents; typical links label almost",
        "perfectly, which is the Section VII claim.",
    ]
    record_artifact("x3_latency_labeling", "\n".join(lines))

    assert true_ms.size > 5_000
    # The typical link's latency labels almost exactly...
    assert np.median(errors) < 0.5
    assert within_1ms > 0.75
    # ...and long-haul latencies are near-perfect (city-snap error is
    # negligible against hundreds of miles of fibre).
    assert long_haul.any()
    relative = errors[long_haul] / true_ms[long_haul]
    assert np.median(relative) < 0.1
    # The association survives the whois-HQ error tail.
    assert corr > 0.25
