"""F10 — Figure 10: size measures vs convex hull; the dispersal cutoff.

Paper: among small ASes hull area varies wildly (even tiny ASes can be
worldwide), but beyond a size threshold (degree ~100, interfaces ~1000,
locations ~100) every AS is maximally dispersed geographically.
"""


from repro.core.asgeo import hull_vs_size


def test_fig10_hull_vs_size(asgeo_bundle, benchmark, record_artifact):
    def compute():
        return {
            measure: hull_vs_size(
                asgeo_bundle.table, asgeo_bundle.hulls_world, size_measure=measure
            )
            for measure in ("nodes", "locations", "degree")
        }

    summaries = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = ["FIGURE 10: SIZE MEASURES VS CONVEX HULL", "-" * 70]
    for measure, summary in summaries.items():
        n_above = int((summary.sizes >= summary.cutoff).sum())
        lines.append(
            f"{measure:10s} cutoff={summary.cutoff:7,.0f} ASes above={n_above:4d} "
            f"min-hull-above/max-hull={summary.dispersal_ratio:.2f}"
        )
    record_artifact("fig10_hull_vs_size", "\n".join(lines))

    for measure, summary in summaries.items():
        above = summary.sizes >= summary.cutoff
        assert above.any(), f"no AS above the {measure} cutoff at full scale"
        # Every AS above the cutoff is widely dispersed: its hull is a
        # large fraction of the maximum observed hull (the Albers
        # projection makes "fraction of max" scale-dependent, so the
        # band is qualitative).
        assert summary.dispersal_ratio > 0.45, measure
        # Small ASes vary: some of them have zero extent, some are
        # widely dispersed (>= 30% of the max hull).
        small = ~above
        small_areas = summary.areas[small]
        assert (small_areas == 0).any()
        assert (small_areas > 0.3 * summary.max_area).any()
