"""T3 — Table III: variation in people/interface density across regions.

Paper: people-per-interface varies by a factor > 100 between less and
highly developed regions, while online-users-per-interface varies only
by about a factor of 4.
"""

from repro.core import experiments, report


def test_table3_region_density(result, benchmark, record_artifact):
    table = benchmark.pedantic(
        experiments.table3, args=(result,), rounds=1, iterations=1
    )
    record_artifact("table3_region_density", report.render_table3(table))

    assert table.people_variation > 40      # paper: > 100 at Internet scale
    assert table.online_variation < 10      # paper: ~ 4
    assert table.people_variation > 8 * table.online_variation

    by_region = {r.region: r for r in table.rows}
    # Developed regions have far fewer people per interface.
    assert by_region["Africa"].people_per_node > 20 * by_region["USA"].people_per_node
    # The USA hosts the most interfaces, as in the paper's Skitter data.
    named = [r for r in table.rows if r.region != "World"]
    assert max(named, key=lambda r: r.n_nodes).region == "USA"
