"""Load benchmark for the snapshot query service.

A multi-threaded generator drives ``/locate`` over persistent
keep-alive connections against a server indexing the small snapshot,
reporting sustained throughput and latency quantiles; acceptance is
>= 5k req/s (DESIGN.md section 5).  A second scenario shrinks the
server's admission and queue bounds and verifies the backpressure
contract under a deliberate overload: some requests shed with 503
while ``/healthz`` stays responsive.

Machine-readable results land in ``BENCH_serve.json`` at the repo root
via :mod:`record` (the shared envelope the bench-history trend table
reads).
"""

from __future__ import annotations

import http.client
import threading
import time

import numpy as np
import pytest

from record import record_bench

from repro.config import small_scenario
from repro.datasets.pipeline import run_pipeline
from repro.serve import OverloadError, SnapshotClient, SnapshotIndex, SnapshotServer

MIN_THROUGHPUT_RPS = 5_000


@pytest.fixture(scope="module")
def serve_index() -> SnapshotIndex:
    """An index over the small snapshot (the serving benchmark substrate)."""
    dataset = run_pipeline(small_scenario()).dataset("IxMapper", "Skitter")
    return SnapshotIndex(dataset)


def _drive(
    url: str,
    paths: list[str],
    n_threads: int,
    requests_per_thread: int,
) -> tuple[float, np.ndarray, int]:
    """Hammer the server; returns (wall_s, latencies_ms, errors)."""
    host, port = url.removeprefix("http://").split(":")
    latencies: list[list[float]] = [[] for _ in range(n_threads)]
    errors = [0] * n_threads
    barrier = threading.Barrier(n_threads + 1)

    def worker(tid: int) -> None:
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        mine = latencies[tid]
        barrier.wait()
        for i in range(requests_per_thread):
            path = paths[(tid * requests_per_thread + i) % len(paths)]
            t0 = time.perf_counter()
            try:
                conn.request("GET", path)
                resp = conn.getresponse()
                resp.read()
                if resp.status != 200:
                    errors[tid] += 1
            except OSError:
                errors[tid] += 1
                conn.close()
                conn = http.client.HTTPConnection(host, int(port), timeout=30)
            mine.append((time.perf_counter() - t0) * 1e3)
        conn.close()

    threads = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(n_threads)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    flat = np.asarray([ms for per in latencies for ms in per])
    return wall, flat, sum(errors)


def test_bench_locate_throughput(serve_index, record_artifact):
    """Sustained ``/locate`` throughput over keep-alive connections.

    The address pool is larger than one batch but far smaller than the
    cache, so steady state exercises the LRU fast path with periodic
    misses through the micro-batcher — the intended serving profile.
    """
    rng = np.random.default_rng(42)
    pool = rng.choice(serve_index.dataset.addresses, size=512, replace=False)
    paths = [f"/locate?address={int(a)}" for a in pool]
    n_threads, per_thread = 8, 4_000

    with SnapshotServer(
        serve_index, port=0, max_inflight=256, cache_size=8192
    ) as server:
        # Warm-up: prime the cache so the timed run measures steady state.
        _drive(server.url, paths, 2, len(paths))
        wall, lat_ms, errors = _drive(server.url, paths, n_threads, per_thread)
        stats = server.stats()

    total = n_threads * per_thread
    rps = total / wall
    p50, p95, p99 = (float(np.percentile(lat_ms, q)) for q in (50, 95, 99))
    payload = {
        "scenario": "locate-throughput",
        "n_threads": n_threads,
        "requests": total,
        "wall_s": round(wall, 4),
        "throughput_rps": round(rps, 1),
        "latency_ms": {
            "p50": round(p50, 4),
            "p95": round(p95, 4),
            "p99": round(p99, 4),
        },
        "errors": errors,
        "cache_hit_ratio": round(stats["cache"]["hit_ratio"], 4),
        "batcher_mean_batch": round(stats["batcher"]["mean_batch"], 2),
    }
    record_bench(
        "serve",
        {"throughput": payload},
        headline={
            "throughput_rps": (rps, "higher"),
            "p99_ms": (p99, "lower"),
        },
        merge=True,
    )
    record_artifact(
        "serve_throughput",
        (
            f"/locate throughput: {rps:,.0f} req/s over {total:,} requests "
            f"({n_threads} threads)\n"
            f"latency ms: p50={p50:.3f} p95={p95:.3f} p99={p99:.3f}\n"
            f"errors={errors}  cache_hit_ratio="
            f"{stats['cache']['hit_ratio']:.3f}"
        ),
    )
    assert errors == 0
    assert rps >= MIN_THROUGHPUT_RPS, (
        f"sustained {rps:,.0f} req/s, need >= {MIN_THROUGHPUT_RPS:,}"
    )


def test_bench_overload_sheds_cleanly(serve_index):
    """Over-capacity burst: 503s appear, /healthz keeps answering."""
    dataset = serve_index.dataset
    server = SnapshotServer(
        serve_index,
        port=0,
        max_inflight=2,
        max_pending=2,
        batch_window_s=0.05,
        cache_size=1,
    )
    shed = ok = 0
    lock = threading.Lock()
    with server:
        url = server.url

        def fire(address: int) -> None:
            nonlocal shed, ok
            try:
                SnapshotClient(url, max_retries=0).locate(address)
                outcome = "ok"
            except OverloadError:
                outcome = "shed"
            except Exception:
                outcome = "other"
            with lock:
                if outcome == "ok":
                    ok += 1
                elif outcome == "shed":
                    shed += 1

        threads = [
            threading.Thread(target=fire, args=(int(a),))
            for a in dataset.addresses[:64]
        ]
        for t in threads:
            t.start()
        # Liveness during the burst is the contract under test.
        health = SnapshotClient(url).healthz()
        for t in threads:
            t.join()
        stats = SnapshotClient(url).stats()

    assert health["status"] == "ok"
    assert shed > 0, "expected some 503s from the overloaded server"
    assert ok > 0, "expected some requests to still be served"
    assert stats["metrics"]["counters"]["serve.shed"] >= shed
    record_bench(
        "serve",
        {
            "overload": {
                "scenario": "overload-burst",
                "burst": 64,
                "served": ok,
                "shed": shed,
                "healthz_during_burst": health["status"],
            }
        },
        merge=True,
    )
