"""X1 — Section II confirmation: fractal dimension via box counting.

Paper (citing Yook, Jeong & Barabasi and confirming on its own data):
routers, ASes and population density share a fractal dimension of about
1.5.  Our synthetic settlement model is clustered but somewhat less
plane-filling than real settlement patterns, so we assert the defining
qualitative property — a fractional dimension well away from both a
point mass (D ~ 0) and uniform placement (D ~ 2) — and that routers and
population have similar dimensions.
"""

from repro.core import experiments, report


def test_x1_fractal_dimension(result, benchmark, record_artifact):
    fractal = benchmark.pedantic(
        experiments.experiment_x1, args=(result,), rounds=1, iterations=1
    )
    record_artifact("x1_fractal_dimension", report.render_fractal(fractal))

    assert 0.5 < fractal.routers.dimension < 1.9
    assert 0.5 < fractal.population.dimension < 1.9
    # Routers and population share their clustering geometry (the
    # paper's point): dimensions agree within ~0.5.
    assert abs(fractal.routers.dimension - fractal.population.dimension) < 0.5
    # Both fits are clean scaling regions.
    assert fractal.routers.fit.r_squared > 0.85
    assert fractal.population.fit.r_squared > 0.85
