"""F2 — Figure 2: router/interface density vs population density.

Paper: per-75'-patch log-log regressions give slopes of 1.20-1.75
across {Mercator, Skitter} x {US, Europe, Japan} — superlinear in every
panel, with Mercator and Skitter panels qualitatively similar.
"""

from repro.core import experiments, report


def test_fig2_density_regression(result, benchmark, record_artifact):
    panels = benchmark.pedantic(
        experiments.figure2, args=(result,), rounds=1, iterations=1
    )
    record_artifact("fig2_density_regression", report.render_figure2(panels))

    assert len(panels) == 6
    for (measurement, region), panel in panels.items():
        # Superlinearity in every panel (paper: 1.20-1.75; we allow a
        # wider band because patch counts are far smaller than CIESIN's).
        assert panel.fit.slope > 1.0, (measurement, region, panel.fit.slope)
        assert panel.fit.slope < 2.3
        assert panel.fit.n >= 10
    # Mercator and Skitter agree per region (the paper's "qualitatively
    # quite similar" panels).
    for region in ("US", "Europe", "Japan"):
        ms = panels[("Mercator", region)].fit.slope
        sk = panels[("Skitter", region)].fit.slope
        assert abs(ms - sk) < 0.5
