"""F5 — Figure 5: small-d semi-log fits (the Waxman form).

Paper: ln f(d) vs d is linear at small d — an exponentially declining
connection probability, the Waxman assumption — with decay scales of
L ~ 140 miles for the US and Japan and ~80 miles for Europe.
"""

from repro.core import experiments, report


def test_fig5_waxman_fit(ixmapper_panels, benchmark, record_artifact):
    fits = benchmark.pedantic(
        experiments.figure5, args=(ixmapper_panels,), rounds=1, iterations=1
    )
    record_artifact("fig5_waxman_fit", report.render_figure5(fits))

    assert len(fits) == 6
    for (measurement, region), fit in fits.items():
        assert fit.fit.slope < 0, (measurement, region)
        # Decay scales within a factor ~3 of the paper's estimates.
        assert 30.0 < fit.l_miles < 500.0, (measurement, region, fit.l_miles)
    # Europe decays faster than the US (paper: L ~ 80 vs ~140 miles).
    assert (
        fits[("Skitter", "Europe")].l_miles < fits[("Skitter", "US")].l_miles
    )
    # Planted-parameter recovery: the generator used L = 140/80/140 miles
    # for US/Europe/Japan; the Skitter US estimate lands near it.
    assert 70.0 < fits[("Skitter", "US")].l_miles < 280.0
    assert 40.0 < fits[("Skitter", "Europe")].l_miles < 160.0
