"""F4 — Figure 4: the empirical distance preference function.

Paper: f(d), estimated over 100 bins (35/15/11 miles for US/Europe/
Japan), declines with distance at small d and flattens at large d, for
both datasets and all three regions.
"""

import numpy as np

from repro.core import experiments, report


def test_fig4_distance_preference(result, benchmark, record_artifact):
    panels = benchmark.pedantic(
        experiments.figure4, args=(result,), rounds=1, iterations=1
    )
    record_artifact("fig4_distance_preference", report.render_figure4(panels))

    assert len(panels) == 6
    for (measurement, region), pref in panels.items():
        assert pref.n_nodes > 1000, (measurement, region)
        assert pref.link_lengths.size > 1000
        # The estimate declines: the first quarter of populated bins
        # averages a higher f than the second quarter.
        extent = pref.populated_extent()
        quarter = max(extent // 4, 2)
        f = np.nan_to_num(pref.f_hat[:extent])
        assert f[:quarter].mean() > f[quarter : 2 * quarter].mean(), (
            measurement, region,
        )
    # Bin sizes follow the paper.
    assert panels[("Skitter", "US")].bin_miles == 35.0
    assert panels[("Skitter", "Europe")].bin_miles == 15.0
    assert panels[("Skitter", "Japan")].bin_miles == 11.0
