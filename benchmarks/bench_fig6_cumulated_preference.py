"""F6 — Figure 6: the cumulated preference function at large d.

Paper: F(d) = sum of f(d') for d' < d is close to linear over the
large-d half of each panel, i.e. connection probability is
distance-independent beyond the sensitivity limit.
"""

from repro.core import experiments, report


def test_fig6_cumulated_preference(ixmapper_panels, benchmark, record_artifact):
    curves = benchmark.pedantic(
        experiments.figure6, args=(ixmapper_panels,), rounds=1, iterations=1
    )
    record_artifact("fig6_cumulated_preference", report.render_figure6(curves))

    assert len(curves) == 6
    good_fits = 0
    for (measurement, region), curve in curves.items():
        # F is a cumulative sum: non-decreasing by construction.
        assert (curve.big_f[1:] >= curve.big_f[:-1] - 1e-15).all()
        assert curve.large_d_fit.slope >= 0
        if curve.large_d_fit.r_squared > 0.6:
            good_fits += 1
    # The paper: all panels but one (Mercator Europe) show good linear
    # agreement; require a majority here.
    assert good_fits >= 4
