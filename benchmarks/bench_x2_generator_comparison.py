"""X2 — Section VII ablation: generator distance-preference comparison.

The paper's conclusion argues for geography-aware topology generation.
This bench compares the distance preference f(d) of four generator
families against the measured data's two-regime shape:

* Waxman: distance-decaying f(d), but over a uniform point field;
* Erdos-Renyi and Barabasi-Albert: geometry-blind, flat f(d);
* transit-stub: hierarchical, locally clustered;
* GeoGen (the paper's envisioned generator): population-superlinear
  placement + two-regime link formation -> decaying f(d) like the data.
"""

import numpy as np

from repro.core import report
from repro.core.experiments import compare_generator
from repro.generators.barabasi_albert import barabasi_albert_graph
from repro.generators.erdos_renyi import erdos_renyi_for_mean_degree
from repro.generators.geogen import GeoGenConfig, geogen_graph
from repro.generators.hierarchical import transit_stub_graph
from repro.generators.waxman import waxman_for_mean_degree
from repro.geo.regions import US, WORLD

_N = 2_000
_US_BOX = dict(south=26.0, north=49.0, west=-124.0, east=-66.0)


def _build_all(world):
    rng = np.random.default_rng(271828)
    graphs = [
        waxman_for_mean_degree(_N, alpha=0.05, mean_degree=3.0, rng=rng, **_US_BOX),
        erdos_renyi_for_mean_degree(_N, mean_degree=3.0, rng=rng, **_US_BOX),
        barabasi_albert_graph(_N, m=2, rng=rng, **_US_BOX),
        transit_stub_graph(8, 6, 6, 5, rng=rng, **_US_BOX),
        geogen_graph(world, GeoGenConfig(n_nodes=_N, n_ases=60), rng).graph,
    ]
    return graphs


def test_x2_generator_comparison(result, benchmark, record_artifact):
    def compare_all():
        rows = []
        for graph in _build_all(result.world):
            region = WORLD if graph.name == "geogen" else US
            bin_miles = 50.0 if graph.name == "geogen" else 35.0
            rows.append(compare_generator(graph, region=region, bin_miles=bin_miles))
        return rows

    rows = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    record_artifact(
        "x2_generator_comparison", report.render_generator_comparison(rows)
    )

    by_name = {row.name: row for row in rows}
    # Distance-aware generators decay.
    assert by_name["waxman"].decay_slope < -0.001
    assert by_name["geogen"].decay_slope < -0.002
    assert by_name["transit-stub"].decay_slope < -0.001
    # Geometry-blind generators do not (slope indistinguishable from 0,
    # i.e. far shallower than any genuine ~100-mile decay scale).
    for name in ("erdos-renyi", "barabasi-albert"):
        slope = by_name[name].decay_slope
        assert np.isnan(slope) or abs(slope) < 0.004, (name, slope)
    # GeoGen's decay scale is comparable to the measured data's
    # (L within a factor ~4 of the planted 120 miles).
    geogen_l = -1.0 / by_name["geogen"].decay_slope
    assert 30.0 < geogen_l < 500.0
