"""Shared benchmark fixtures.

The full-scale pipeline (the paper's workload) runs once per session —
served from the on-disk artifact cache under ``benchmarks/.cache/`` on
warm sessions — and every bench measures one analysis stage over that
shared result and writes its rendered paper artefact under
``benchmarks/output/``.

Full-scale acceptance bands (DESIGN.md section 5) are asserted here, in
the benches, rather than in the unit-test suite, because they only hold
at realistic scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import default_scenario
from repro.core import experiments
from repro.datasets.pipeline import PipelineResult

OUTPUT_DIR = Path(__file__).parent / "output"
CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session")
def result() -> PipelineResult:
    """The full-scale pipeline result, shared by every bench.

    Runs independent stages on four threads and keeps the artifacts in
    ``benchmarks/.cache`` so later sessions start from a warm cache —
    both are bit-for-bit identical to a cold serial run.
    """
    return experiments.prepare_result(
        default_scenario(), jobs=4, cache_dir=CACHE_DIR
    )


@pytest.fixture(scope="session")
def ixmapper_panels(result):
    """Figure 4 distance-preference panels (IxMapper), computed once."""
    return experiments.figure4(result, mapper="IxMapper")


@pytest.fixture(scope="session")
def edgescape_panels(result):
    """Figure 4 panels for the EdgeScape appendix variants."""
    return experiments.figure4(result, mapper="EdgeScape")


@pytest.fixture(scope="session")
def asgeo_bundle(result):
    """Figures 7-10 bundle (IxMapper, Skitter), computed once."""
    return experiments.figures7_to_10(result)


@pytest.fixture(scope="session")
def record_artifact():
    """Writer for rendered paper artefacts: record_artifact(name, text)."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return write
