"""F1 — Figure 1: mapped node scatter per study region.

Paper: Figure 1 plots the geolocated Skitter interfaces inside the US,
Europe and Japan boxes; all three regions are densely populated with
mapped nodes, concentrated on population centres.
"""

import numpy as np

from repro.core import experiments
from repro.geo.regions import region_by_name


def _series_summary(series) -> str:
    lines = ["FIGURE 1: MAPPED NODES PER STUDY REGION", "-" * 60]
    for name, (lats, lons) in series.items():
        lines.append(
            f"{name:8s} nodes={lats.size:>8,d}  "
            f"lat [{lats.min():.1f}, {lats.max():.1f}]  "
            f"lon [{lons.min():.1f}, {lons.max():.1f}]"
        )
    return "\n".join(lines)


def test_fig1_region_maps(result, benchmark, record_artifact):
    series = benchmark.pedantic(
        experiments.figure1, args=(result,), rounds=1, iterations=1
    )
    record_artifact("fig1_region_maps", _series_summary(series))

    assert set(series) == {"US", "Europe", "Japan"}
    for name, (lats, lons) in series.items():
        region = region_by_name(name)
        assert lats.size > 500
        assert np.all(region.contains_mask(lats, lons))
    # The US holds the most mapped nodes, as in the paper.
    assert series["US"][0].size > series["Europe"][0].size
    assert series["Europe"][0].size > series["Japan"][0].size
