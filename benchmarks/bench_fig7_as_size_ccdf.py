"""F7 — Figure 7: complementary distributions of AS size measures.

Paper: number of interfaces, number of distinct locations, and AS
degree are all long-tailed (log-log CCDFs spanning several decades),
extending the known results for degree and router counts to geography.
"""


from repro.core import stats
from repro.core.asgeo import size_distributions


def test_fig7_as_size_ccdf(asgeo_bundle, benchmark, record_artifact):
    dists = benchmark.pedantic(
        size_distributions, args=(asgeo_bundle.table,), rounds=1, iterations=1
    )
    lines = ["FIGURE 7: AS SIZE CCDFs (log-log)", "-" * 60]
    for name, (lx, ly) in (
        ("interfaces", dists.nodes_ccdf),
        ("locations", dists.locations_ccdf),
        ("degree", dists.degree_ccdf),
    ):
        lines.append(
            f"{name:11s} decades={dists.decades[name.replace('interfaces', 'nodes')]:.1f} "
            f"points={lx.size} ccdf range [{10**ly.min():.1e}, {10**ly.max():.2f}]"
        )
    record_artifact("fig7_as_size_ccdf", "\n".join(lines))

    # Long tails: every measure spans at least two decades.
    assert dists.decades["nodes"] >= 2.5
    assert dists.decades["locations"] >= 1.8
    assert dists.decades["degree"] >= 1.5
    # The CCDF is roughly linear on log-log axes (power-law-like): a
    # straight-line fit explains most of the variance.
    for lx, ly in (dists.nodes_ccdf, dists.locations_ccdf, dists.degree_ccdf):
        fit = stats.least_squares_fit(lx, ly)
        assert fit.slope < 0
        assert fit.r_squared > 0.7
