"""Ablations: the analyses respond to the planted parameters.

The reproduction's validity rests on a closed loop: parameters planted
in the ground-truth generator must move the corresponding measured
statistics.  These ablations vary one planted knob at a time (at
reduced scale) and assert the analysis output moves the right way:

* ``alpha`` (density superlinearity) -> Figure 2 fitted slope;
* ``long_range_fraction`` (distance-free links) -> Table V's fraction
  of links inside the distance-sensitive regime;
* ``waxman_l_miles`` -> the recovered decay scale L.
"""

import pytest

from repro.config import (
    DEFAULT_ALPHA,
    DEFAULT_WAXMAN_L,
    GroundTruthConfig,
    MercatorConfig,
    ScenarioConfig,
    SkitterConfig,
)
from repro.core.density import patch_regression
from repro.core.distance import preference_function, sensitivity_limit
from repro.datasets.pipeline import run_pipeline
from repro.geo.regions import US


def _scenario(seed: int = 404, **truth_overrides) -> ScenarioConfig:
    truth = dict(
        total_routers=9_000,
        n_ases=250,
        tier1_count=8,
        tier2_count=40,
    )
    truth.update(truth_overrides)
    return ScenarioConfig(
        seed=seed,
        city_scale=0.8,
        ground_truth=GroundTruthConfig(**truth),
        skitter=SkitterConfig(n_monitors=10, destinations_per_monitor=1_500),
        mercator=MercatorConfig(n_targets=2_000, n_source_routed=800),
    )


def _us_slope(result) -> float:
    dataset = result.dataset("IxMapper", "Skitter")
    return patch_regression(dataset, result.world.field, US).fit.slope


def _us_truth_city_slope(result, min_count: int = 5) -> float:
    """Planted city-level density exponent, free of count truncation.

    Per-patch OLS over observed counts is biased toward 1 by zero
    truncation (patches with expected counts below one appear only when
    they get lucky); regressing ground-truth city router counts over
    cities with at least ``min_count`` routers removes that bias and
    exposes the planted exponent directly.
    """
    import numpy as np

    from repro.core.stats import loglog_fit

    cities = result.world.cities
    code_to_index = {c.code: i for i, c in enumerate(cities)}
    counts = np.zeros(len(cities))
    for router in result.topology.routers:
        index = code_to_index.get(router.city_code)
        if index is not None:
            counts[index] += 1
    pops = np.array([c.population for c in cities])
    usa = np.array([c.zone == "USA" for c in cities])
    keep = usa & (counts >= min_count)
    return loglog_fit(pops[keep], counts[keep]).slope


def _us_sensitivity(result):
    dataset = result.dataset("IxMapper", "Skitter")
    pref = preference_function(dataset, US, bin_miles=35.0)
    return sensitivity_limit(pref)


@pytest.mark.parametrize("low,high", [(1.0, 1.8)])
def test_ablation_alpha_moves_density_slope(low, high, benchmark, record_artifact):
    def run_pair():
        slopes = {}
        for alpha in (low, high):
            overrides = dict(DEFAULT_ALPHA)
            overrides["USA"] = alpha
            result = run_pipeline(_scenario(alpha=overrides))
            slopes[alpha] = (_us_truth_city_slope(result), _us_slope(result))
        return slopes

    slopes = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_artifact(
        "ablation_alpha",
        "ABLATION: planted alpha -> density exponent (US)\n"
        + "\n".join(
            f"  alpha={a:.1f} -> planted city-level slope={t:.2f}, "
            f"measured patch slope={m:.2f}"
            for a, (t, m) in slopes.items()
        ),
    )
    # The generator responds strongly at the city level...
    assert slopes[high][0] > slopes[low][0] + 0.4
    assert slopes[low][0] == pytest.approx(low, abs=0.35)
    assert slopes[high][0] == pytest.approx(high, abs=0.45)
    # ...and the end-to-end measured patch slope moves the same
    # direction (traceroute sampling and zero truncation compress the
    # response — a methodology effect worth knowing about).
    assert slopes[high][1] > slopes[low][1]
    assert slopes[low][1] > 0.7


def test_ablation_long_range_fraction_moves_link_tail(benchmark, record_artifact):
    def run_pair():
        tails = {}
        for long_range in (0.02, 0.45):
            result = run_pipeline(_scenario(long_range_fraction=long_range))
            truth_lengths = result.topology.link_lengths()
            dataset = result.dataset("IxMapper", "Skitter")
            measured_lengths = dataset.link_lengths()
            tails[long_range] = (
                float((truth_lengths > 2000.0).mean()),
                float((measured_lengths > 2000.0).mean()),
            )
        return tails

    tails = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_artifact(
        "ablation_long_range",
        "ABLATION: long-range link fraction -> link-length tail\n"
        "(share of links longer than 2000 miles)\n"
        + "\n".join(
            f"  long_range={q:.2f} -> ground truth {t:.4f}, measured {m:.4f}"
            for q, (t, m) in tails.items()
        ),
    )
    # More distance-free formation -> a clearly heavier intercontinental
    # tail in the ground truth (most links are structural/Waxman at
    # either setting, so the response is a 10-40% shift, not a jump)...
    assert tails[0.45][0] > 1.1 * tails[0.02][0]
    assert tails[0.45][0] - tails[0.02][0] > 0.01
    # ...and a same-direction shift in the measured data (traceroute
    # sampling already over-represents long backbone links, so the
    # relative movement there is smaller).
    assert tails[0.45][1] > tails[0.02][1]


def test_ablation_waxman_l_recovered(benchmark, record_artifact):
    def run_pair():
        recovered = {}
        for planted in (70.0, 220.0):
            overrides = dict(DEFAULT_WAXMAN_L)
            overrides["USA"] = planted
            result = run_pipeline(_scenario(waxman_l_miles=overrides))
            recovered[planted] = _us_sensitivity(result).waxman.l_miles
        return recovered

    recovered = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    record_artifact(
        "ablation_waxman_l",
        "ABLATION: planted Waxman L -> recovered L (US)\n"
        + "\n".join(
            f"  planted={p:.0f} mi -> recovered={r:.0f} mi"
            for p, r in recovered.items()
        ),
    )
    # Recovered decay scales order correctly and track the plant within
    # a factor ~2.5 (measurement + mapping smear the estimate).
    assert recovered[220.0] > recovered[70.0]
    assert 70.0 / 2.5 < recovered[70.0] < 70.0 * 2.5
    assert 220.0 / 2.5 < recovered[220.0] < 220.0 * 2.5
