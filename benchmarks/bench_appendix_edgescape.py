"""F11-F17 — Appendix: EdgeScape variants of Figures 2, 4-8, 10.

Paper: every main-text analysis is repeated with Akamai's EdgeScape
mapping; the conclusions are unchanged.  These benches run the same
runners with ``mapper="EdgeScape"`` and assert the same shapes, i.e.
the robustness claim itself.
"""


from repro.core import experiments, report
from repro.core.asgeo import size_correlations, size_distributions
from repro.core.distance import sensitivity_limit


def test_appendix_fig11_density(result, benchmark, record_artifact):
    """Figure 11: EdgeScape density regressions stay superlinear."""
    panels = benchmark.pedantic(
        experiments.figure2, args=(result, "EdgeScape"), rounds=1, iterations=1
    )
    record_artifact("fig11_edgescape_density", report.render_figure2(panels))
    for panel in panels.values():
        assert panel.fit.slope > 1.0


def test_appendix_fig12_to_14_distance(
    edgescape_panels, benchmark, record_artifact
):
    """Figures 12-14: EdgeScape distance preference keeps both regimes."""
    fits, curves = benchmark.pedantic(
        lambda: (
            experiments.figure5(edgescape_panels),
            experiments.figure6(edgescape_panels),
        ),
        rounds=1,
        iterations=1,
    )
    record_artifact("fig13_edgescape_waxman", report.render_figure5(fits))
    record_artifact("fig14_edgescape_cumulated", report.render_figure6(curves))
    assert len(fits) >= 4
    for fit in fits.values():
        assert fit.fit.slope < 0
        assert 20.0 < fit.l_miles < 600.0
    for key, pref in edgescape_panels.items():
        limit = sensitivity_limit(pref)
        assert limit.fraction_below > 0.6, key


def test_appendix_fig15_to_17_as_geography(result, benchmark, record_artifact):
    """Figures 15-17: EdgeScape AS geography matches the main text."""
    bundle = benchmark.pedantic(
        experiments.figures7_to_10,
        args=(result, "EdgeScape"),
        rounds=1,
        iterations=1,
    )
    record_artifact(
        "fig15_17_edgescape_as_geography", report.render_as_geography(bundle)
    )
    dists = size_distributions(bundle.table)
    assert dists.decades["nodes"] >= 2.5
    corr = size_correlations(bundle.table)
    assert corr.pearson_nodes_locations > 0.6
    assert 0.5 < bundle.hulls_world.zero_fraction < 0.95
    for summary in bundle.dispersal.values():
        above = summary.sizes >= summary.cutoff
        if above.any():
            assert summary.dispersal_ratio > 0.45


def test_appendix_cross_mapper_consistency(
    result, ixmapper_panels, edgescape_panels, benchmark, record_artifact
):
    """The appendix's purpose: both mappers yield the same conclusions."""

    def compute():
        rows = []
        for key in sorted(set(ixmapper_panels) & set(edgescape_panels)):
            ix = sensitivity_limit(ixmapper_panels[key]).fraction_below
            es = sensitivity_limit(edgescape_panels[key]).fraction_below
            rows.append((key, ix, es))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["APPENDIX: CROSS-MAPPER CONSISTENCY", "-" * 60]
    for key, ix, es in rows:
        lines.append(
            f"{key[0]:10s} {key[1]:8s} IxMapper={ix:.2f} EdgeScape={es:.2f}"
        )
        # The two tools agree on the conclusion; their estimates differ
        # by up to ~0.15-0.2 because EdgeScape's rural snapping shortens
        # apparent link lengths (cf. the paper's own appendix spread).
        assert abs(ix - es) < 0.20, key
    record_artifact("appendix_cross_mapper", "\n".join(lines))
