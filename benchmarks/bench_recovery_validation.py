"""The closed loop in one call: planted laws vs recovered estimates.

This is the reproduction's summary health check (DESIGN.md section 5):
every law the generator plants — density exponents, Waxman scales,
distance-sensitive shares, interdomain structure, AS geography, the
Table III contrast — compared against what the full pipeline's analyses
recover at full scale.
"""

from repro.core.validation import validate_recovery


def test_recovery_validation(result, benchmark, record_artifact):
    report = benchmark.pedantic(
        validate_recovery, args=(result,), rounds=1, iterations=1
    )
    record_artifact("recovery_validation", report.render())

    # At full scale, at most one check may miss its band (Japan's
    # Waxman-L intersection is noisy, exactly as the paper warns).
    failed = [check for check in report.checks if not check.ok]
    assert len(failed) <= 1, [c.law for c in failed]
    assert len(report.checks) >= 12
