"""T4 — Table IV: testing for homogeneity.

Paper: the northern and southern halves of the US show similar
people-per-interface (991 vs 1305), while the Central American box is
dramatically different (35,533) — justifying the restriction of the
density analysis to economically homogeneous regions.
"""

from repro.core import experiments, report


def test_table4_homogeneity(result, benchmark, record_artifact):
    rows = benchmark.pedantic(
        experiments.table4, args=(result,), rounds=1, iterations=1
    )
    record_artifact("table4_homogeneity", report.render_table4(rows))

    by_region = {r.region: r for r in rows}
    north = by_region["Northern US"].people_per_node
    south = by_region["Southern US"].people_per_node
    central = by_region["Central Am."].people_per_node
    # The US halves agree within a factor ~2 (paper: 1.3x).
    assert max(north, south) / min(north, south) < 2.5
    # Central America is at least an order of magnitude sparser
    # (paper: ~30x).
    assert central / max(north, south) > 10
