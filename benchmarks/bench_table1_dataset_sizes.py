"""T1 — Table I: sizes of processed datasets.

Paper: four processed datasets ({IxMapper, EdgeScape} x {Mercator,
Skitter}) with node, link and location counts; Skitter datasets are
substantially larger than Mercator ones, and both mapping tools agree on
sizes to within a few percent.
"""

from repro.core import experiments, report


def test_table1_dataset_sizes(result, benchmark, record_artifact):
    rows = benchmark.pedantic(
        experiments.table1, args=(result,), rounds=1, iterations=1
    )
    record_artifact("table1_dataset_sizes", report.render_table1(rows))

    by_label = {r.label: r for r in rows}
    assert len(rows) == 4
    # Skitter (interface granularity) sees more nodes than Mercator.
    assert (
        by_label["IxMapper, Skitter"].n_nodes
        > by_label["IxMapper, Mercator"].n_nodes
    )
    # The two mapping tools agree on dataset sizes to within 10%.
    for measurement in ("Mercator", "Skitter"):
        ix = by_label[f"IxMapper, {measurement}"].n_nodes
        es = by_label[f"EdgeScape, {measurement}"].n_nodes
        assert abs(ix - es) / max(ix, es) < 0.10
    # Every dataset resolves a substantial number of distinct locations.
    for row in rows:
        assert row.n_locations > 200
        assert row.n_links > row.n_nodes * 0.5
