"""Load benchmark for the sharded serving cluster.

A multi-threaded generator drives *batched* ``/locate`` requests
(128 addresses per call, randomised combinations so the coordinator
cache stays cold) against a 2-range x 2-replica in-process fleet and
reports sustained address-lookup throughput.  Acceptance: the cluster
must sustain at least twice the single-server point-lookup baseline
recorded in ``BENCH_serve.json`` — batching plus scatter-gather is the
cluster's answer to the one-request-one-lookup ceiling.

For transparency the same batched workload is also measured against a
single-process server in the same run (the honest same-machine
comparison; the recorded speedup is against the stored point-lookup
baseline, which is what the acceptance bar names).

Machine-readable results land in ``BENCH_cluster.json`` at the repo
root via :mod:`record`.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from record import ROOT, record_bench

from repro.cluster import (
    ClusterCoordinator,
    ShardServer,
    build_routing,
    partition_bounds,
)
from repro.config import small_scenario
from repro.datasets.pipeline import run_pipeline
from repro.datasets.serialize import save_dataset
from repro.serve import SnapshotIndex, SnapshotServer

#: Fallback when BENCH_serve.json is absent (its recorded value).
DEFAULT_BASELINE_RPS = 10_323.6

BATCH = 128
N_THREADS = 4
BATCHES_PER_THREAD = 250


def single_lookup_baseline_rps() -> float:
    """The stored single-server ``/locate`` point-lookup baseline."""
    path = ROOT / "BENCH_serve.json"
    if not path.exists():
        return DEFAULT_BASELINE_RPS
    payload = json.loads(path.read_text(encoding="utf-8"))
    # Envelope schema (headline) or the earlier per-bench schema.
    headline = payload.get("headline", {})
    if "throughput_rps" in headline:
        return float(headline["throughput_rps"]["value"])
    return float(
        payload.get("throughput", {}).get(
            "throughput_rps", DEFAULT_BASELINE_RPS
        )
    )


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory) -> tuple[Path, np.ndarray]:
    dataset = run_pipeline(small_scenario()).dataset("IxMapper", "Skitter")
    path = tmp_path_factory.mktemp("bench-cluster") / "snapshot.npz"
    save_dataset(dataset, path)
    return path, dataset.addresses


def _batch_paths(addresses: np.ndarray, n_paths: int) -> list[str]:
    """Distinct random address combinations: every request is a cache miss."""
    rng = np.random.default_rng(2002)
    paths = []
    for _ in range(n_paths):
        combo = rng.choice(addresses, size=BATCH, replace=False)
        paths.append(
            "/locate?addresses=" + ",".join(str(int(a)) for a in combo)
        )
    return paths


def _drive(
    url: str, paths: list[str], n_threads: int, requests_per_thread: int
) -> tuple[float, int]:
    """Hammer batched lookups; returns (wall_s, errors)."""
    host, port = url.removeprefix("http://").split(":")
    errors = [0] * n_threads
    barrier = threading.Barrier(n_threads + 1)

    def worker(tid: int) -> None:
        conn = http.client.HTTPConnection(host, int(port), timeout=60)
        barrier.wait()
        for i in range(requests_per_thread):
            path = paths[(tid * requests_per_thread + i) % len(paths)]
            try:
                conn.request("GET", path)
                resp = conn.getresponse()
                body = resp.read()
                if resp.status != 200 or body.count(b"address") != BATCH:
                    errors[tid] += 1
            except OSError:
                errors[tid] += 1
                conn.close()
                conn = http.client.HTTPConnection(host, int(port), timeout=60)
        conn.close()

    threads = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, sum(errors)


def test_bench_cluster_locate_throughput(snapshot, record_artifact):
    snapshot_path, addresses = snapshot
    paths = _batch_paths(addresses, 1024)
    total_lookups = N_THREADS * BATCHES_PER_THREAD * BATCH

    ranges = partition_bounds(addresses, 2)
    shards = []
    urls_by_slot = []
    for rng_ in ranges:
        urls = []
        for _ in range(2):
            shard = ShardServer(
                str(snapshot_path), rng_.addr_lo, rng_.addr_hi, port=0
            )
            shard.start()
            shards.append(shard)
            urls.append(shard.url)
        urls_by_slot.append(urls)
    routing = build_routing(ranges, urls_by_slot)
    coordinator = ClusterCoordinator(
        routing, port=0, max_inflight=256, cache_size=1
    )
    coordinator.start()
    try:
        _drive(coordinator.url, paths, 2, 20)  # warm connections and pools
        wall, errors = _drive(
            coordinator.url, paths, N_THREADS, BATCHES_PER_THREAD
        )
    finally:
        coordinator.stop()
        for shard in shards:
            shard.stop()
    cluster_lps = total_lookups / wall

    # The honest same-run comparison: one process, same batched load.
    index = SnapshotIndex.build_partition(str(snapshot_path), None, None)
    with SnapshotServer(
        index, port=0, max_inflight=256, cache_size=1
    ) as single:
        _drive(single.url, paths, 2, 20)
        single_wall, single_errors = _drive(
            single.url, paths, N_THREADS, BATCHES_PER_THREAD
        )
    single_lps = total_lookups / single_wall

    baseline = single_lookup_baseline_rps()
    speedup = cluster_lps / baseline
    payload = {
        "scenario": "cluster-batched-locate",
        "topology": "2 ranges x 2 replicas, in-process",
        "batch_size": BATCH,
        "n_threads": N_THREADS,
        "lookups": total_lookups,
        "wall_s": round(wall, 4),
        "cluster_lookups_per_s": round(cluster_lps, 1),
        "single_process_batched_lookups_per_s": round(single_lps, 1),
        "single_lookup_baseline_rps": baseline,
        "errors": errors,
    }
    record_bench(
        "cluster",
        payload,
        headline={
            "locate_lookups_per_s": (cluster_lps, "higher"),
            "speedup_vs_single_lookup_baseline": (speedup, "higher"),
        },
    )
    record_artifact(
        "cluster_throughput",
        (
            f"cluster batched /locate: {cluster_lps:,.0f} lookups/s "
            f"({N_THREADS} threads x {BATCHES_PER_THREAD} batches "
            f"of {BATCH})\n"
            f"same-run single process, same batched load: "
            f"{single_lps:,.0f} lookups/s\n"
            f"stored single-lookup baseline: {baseline:,.1f} req/s "
            f"-> speedup {speedup:.1f}x (gate: >= 2x)\n"
            f"errors={errors}"
        ),
    )
    assert errors == 0 and single_errors == 0
    assert cluster_lps >= 2.0 * baseline, (
        f"cluster sustained {cluster_lps:,.0f} lookups/s, "
        f"need >= {2.0 * baseline:,.0f}"
    )
