"""T6 — Table VI: intradomain vs. interdomain links.

Paper: intradomain links are the large majority (83%+ in every region)
and interdomain links are about twice as long on average; roughly half
of all links lie within the continental US.
"""

from repro.core import experiments, report


def test_table6_link_domains(result, benchmark, record_artifact):
    rows = benchmark.pedantic(
        experiments.table6, args=(result,), rounds=1, iterations=1
    )
    record_artifact("table6_link_domains", report.render_table6(rows))

    by_region = {r.region: r for r in rows}
    world = by_region["World"]
    # Majority intradomain (paper: >= 83%).
    assert world.intradomain_fraction > 0.75
    # Interdomain links roughly twice as long (paper: ~2.2x world).
    ratio = world.mean_interdomain_miles / world.mean_intradomain_miles
    assert 1.5 < ratio < 6.0
    # About half of the links lie in the US box.
    us = by_region["US"]
    us_share = (us.n_interdomain + us.n_intradomain) / (
        world.n_interdomain + world.n_intradomain
    )
    assert 0.3 < us_share < 0.8
    # The pattern holds per region too.
    for name in ("US", "Europe", "Japan"):
        row = by_region[name]
        assert row.intradomain_fraction > 0.75
        assert row.mean_interdomain_miles > row.mean_intradomain_miles
